/**
 * @file
 * Units for the fault-path recorder (docs/OBSERVABILITY.md): stage
 * stamp semantics (keep-first vs keep-latest), telescoping of stage
 * deltas to the end-to-end total, retry attribution, flow-event
 * well-formedness, and the tracer's bounded-memory event cap.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/faultpath.hh"
#include "sim/trace.hh"
#include "util/stats.hh"

namespace ap::sim {
namespace {

/** Count occurrences of @p needle in @p s. */
size_t
countOf(const std::string& s, const std::string& needle)
{
    size_t n = 0;
    for (size_t pos = s.find(needle); pos != std::string::npos;
         pos = s.find(needle, pos + needle.size()))
        n++;
    return n;
}

TEST(FaultPath, FullChainTelescopesToTotal)
{
    StatGroup stats;
    FaultPath fp;
    fp.attach(&stats, nullptr);

    uint64_t fid = fp.begin(3, 1, 42, 1000);
    ASSERT_NE(fid, 0u);
    EXPECT_EQ(fp.openCount(), 1u);
    fp.stamp(fid, FaultStage::Lookup, 1100);
    fp.stamp(fid, FaultStage::Alloc, 1250);
    fp.stamp(fid, FaultStage::Enqueue, 1300);
    fp.stamp(fid, FaultStage::TransferStart, 1800);
    fp.stamp(fid, FaultStage::TransferEnd, 2800);
    fp.stamp(fid, FaultStage::Fill, 2900);
    fp.end(fid, FaultKind::Major, 3000);
    EXPECT_EQ(fp.openCount(), 0u);

    EXPECT_EQ(stats.counter("faultpath.faults.major"), 1u);
    auto seg = [&](const char* s) {
        const Histogram* h =
            stats.findHistogram(std::string("faultpath.major.") + s);
        return h ? h->sum() : -1.0;
    };
    EXPECT_EQ(seg("lookup"), 100.0);
    EXPECT_EQ(seg("alloc"), 150.0);
    EXPECT_EQ(seg("enqueue"), 50.0);
    EXPECT_EQ(seg("queue_wait"), 500.0);
    EXPECT_EQ(seg("transfer"), 1000.0);
    EXPECT_EQ(seg("fill"), 100.0);
    EXPECT_EQ(seg("wakeup"), 100.0);
    EXPECT_EQ(seg("total"), 2000.0);
    // The stages telescope: their sum IS the end-to-end latency.
    double stage_sum = seg("lookup") + seg("alloc") + seg("enqueue") +
                       seg("queue_wait") + seg("transfer") + seg("fill") +
                       seg("wakeup");
    EXPECT_EQ(stage_sum, seg("total"));
    // Subsystem rollup: hostio owns enqueue+queue_wait+transfer.
    EXPECT_EQ(stats.findHistogram("faultpath.subsys.hostio")->sum(),
              1550.0);
}

TEST(FaultPath, SkippedStagesStillTelescope)
{
    // A minor fault stamps only Lookup; the rest of the time is
    // wakeup. No zero-length phantom stages appear.
    StatGroup stats;
    FaultPath fp;
    fp.attach(&stats, nullptr);
    uint64_t fid = fp.begin(0, 1, 7, 500);
    fp.stamp(fid, FaultStage::Lookup, 600);
    fp.end(fid, FaultKind::Minor, 650);
    EXPECT_EQ(stats.findHistogram("faultpath.minor.lookup")->sum(),
              100.0);
    EXPECT_EQ(stats.findHistogram("faultpath.minor.wakeup")->sum(), 50.0);
    EXPECT_EQ(stats.findHistogram("faultpath.minor.total")->sum(), 150.0);
    EXPECT_EQ(stats.findHistogram("faultpath.minor.alloc"), nullptr);
}

TEST(FaultPath, LookupAndEnqueueKeepFirstTransferKeepsLatest)
{
    StatGroup stats;
    FaultPath fp;
    fp.attach(&stats, nullptr);
    uint64_t fid = fp.begin(0, 1, 7, 0);
    fp.stamp(fid, FaultStage::Lookup, 100);
    fp.stamp(fid, FaultStage::Lookup, 900); // re-probe: ignored
    fp.stamp(fid, FaultStage::Enqueue, 200);
    fp.stamp(fid, FaultStage::TransferStart, 300);
    fp.stamp(fid, FaultStage::TransferEnd, 400);
    // Retry: Enqueue keeps the first stamp, transfer marks move.
    fp.attempt(fid);
    fp.stamp(fid, FaultStage::Enqueue, 500);
    fp.stamp(fid, FaultStage::TransferStart, 600);
    fp.stamp(fid, FaultStage::TransferEnd, 700);
    fp.end(fid, FaultKind::Major, 800);

    EXPECT_EQ(stats.counter("faultpath.retries"), 1u);
    EXPECT_EQ(stats.findHistogram("faultpath.major.lookup")->sum(),
              100.0);
    EXPECT_EQ(stats.findHistogram("faultpath.major.enqueue")->sum(),
              100.0);
    // queue_wait = 600-200: the failed attempt's wait and backoff all
    // land in the wait for the attempt that succeeded.
    EXPECT_EQ(stats.findHistogram("faultpath.major.queue_wait")->sum(),
              400.0);
    EXPECT_EQ(stats.findHistogram("faultpath.major.transfer")->sum(),
              100.0);
}

TEST(FaultPath, ZeroAndUnknownIdsAreNoops)
{
    StatGroup stats;
    FaultPath fp;
    fp.attach(&stats, nullptr);
    fp.stamp(0, FaultStage::Lookup, 10);
    fp.attempt(0);
    fp.end(0, FaultKind::Major, 10);
    fp.stamp(999, FaultStage::Lookup, 10);
    fp.attempt(999);
    fp.end(999, FaultKind::Major, 10);
    EXPECT_EQ(stats.counter("faultpath.faults.major"), 0u);
    EXPECT_EQ(stats.counter("faultpath.retries"), 0u);
    EXPECT_EQ(fp.openCount(), 0u);
}

TEST(FaultPath, FlowEventsAreWellFormed)
{
    StatGroup stats;
    Tracer tr;
    tr.enable();
    FaultPath fp;
    fp.attach(&stats, &tr);

    // Two faults, one with a DMA hop (TransferStart stamped).
    uint64_t a = fp.begin(1, 1, 10, 0);
    fp.stamp(a, FaultStage::Lookup, 10);
    fp.stamp(a, FaultStage::TransferStart, 20);
    fp.stamp(a, FaultStage::TransferEnd, 30);
    fp.end(a, FaultKind::Major, 40);
    uint64_t b = fp.begin(2, 1, 11, 50);
    fp.stamp(b, FaultStage::Lookup, 60);
    fp.end(b, FaultKind::Minor, 70);

    std::ostringstream os;
    tr.writeJson(os);
    std::string s = os.str();
    // Every flow start has exactly one matching finish, ids unique.
    EXPECT_EQ(countOf(s, "\"ph\":\"s\""), 2u);
    EXPECT_EQ(countOf(s, "\"ph\":\"f\""), 2u);
    EXPECT_EQ(countOf(s, "\"ph\":\"t\""), 1u); // only a reached DMA
    EXPECT_EQ(countOf(s, "\"id\":" + std::to_string(a)), 3u);
    EXPECT_EQ(countOf(s, "\"id\":" + std::to_string(b)), 2u);
    // Binding point on the finish so the arrow lands at the span.
    EXPECT_EQ(countOf(s, "\"bp\":\"e\""), 2u);
    // Stage spans carry the fault args.
    EXPECT_NE(s.find("\"args\":{\"fault\":"), std::string::npos);
    EXPECT_NE(s.find("major.queue_wait"), std::string::npos);
    EXPECT_NE(s.find("minor.wakeup"), std::string::npos);
}

TEST(Tracer, EventCapBoundsMemoryAndCountsDrops)
{
    StatGroup stats;
    Tracer tr;
    tr.setStats(&stats);
    tr.setEventCap(4);
    tr.enable();
    for (int i = 0; i < 10; ++i)
        tr.instant(0, "x", "e", i);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    EXPECT_EQ(stats.counter("trace.dropped_events"), 6u);
    // clear() resets the buffer and the drop accounting.
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.dropped(), 0u);
    tr.instant(0, "x", "e", 0);
    EXPECT_EQ(tr.size(), 1u);
}

TEST(FaultPath, IssuedCountsMonotonically)
{
    StatGroup stats;
    FaultPath fp;
    fp.attach(&stats, nullptr);
    EXPECT_EQ(fp.issued(), 0u);
    uint64_t a = fp.begin(0, 0, 0, 0);
    uint64_t b = fp.begin(0, 0, 0, 0);
    EXPECT_NE(a, b);
    EXPECT_EQ(fp.issued(), 2u);
    fp.end(a, FaultKind::Minor, 1);
    fp.end(b, FaultKind::Minor, 1);
}

} // namespace
} // namespace ap::sim
