/**
 * @file
 * Cross-check of the static lock hierarchy against runtime behavior:
 * aplint's lock-order rule enforces the declared order ap::kLockOrder
 * (tlb.entry < pt.bucket < pc.alloc) at the source level, and simcheck
 * records every observed nesting in its lock graph. These tests map
 * the runtime edges back to the declared classes and assert the two
 * views agree — a drift in either direction (a new nesting the
 * declaration doesn't allow, or a stale declaration) fails here.
 */

#include <gtest/gtest.h>

#include "core/vm.hh"
#include "sim/check/simcheck.hh"
#include "util/annotations.hh"

namespace ap::sim::check {
namespace {

/**
 * Map a DeviceLock debug name to its declared lock class. The name
 * patterns are set where the locks are constructed: SoftTlb entries
 * ("tlb[<blk>].entry[<i>]"), page-table buckets ("pt.bucket[<b>]"),
 * and the frame allocator ("pc.allocLock").
 */
std::string
classOf(const std::string& debug_name)
{
    if (debug_name.rfind("tlb[", 0) == 0)
        return "tlb.entry";
    if (debug_name.rfind("pt.bucket", 0) == 0)
        return "pt.bucket";
    if (debug_name == "pc.allocLock")
        return "pc.alloc";
    return "";
}

/** Rank of a class in the declared order; -1 if undeclared. */
int
rankOf(const std::string& cls)
{
    const size_t n = sizeof(ap::kLockOrder) / sizeof(ap::kLockOrder[0]);
    for (size_t i = 0; i < n; ++i)
        if (cls == ap::kLockOrder[i])
            return static_cast<int>(i);
    return -1;
}

class LockContractTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SimCheck& sc = SimCheck::get();
        sc.reset();
        sc.setEnabled(true);
        sc.setFailOnReport(false);
    }

    void
    TearDown() override
    {
        SimCheck& sc = SimCheck::get();
        sc.setEnabled(false);
        sc.reset();
    }
};

TEST_F(LockContractTest, DeclaredOrderCoversAllLockClasses)
{
    // Every name pattern the simulator assigns must map to a declared
    // class, and the declared classes must be distinct ranks.
    EXPECT_EQ(rankOf(classOf("tlb[3].entry[7]")), 0);
    EXPECT_EQ(rankOf(classOf("pt.bucket[12]")), 1);
    EXPECT_EQ(rankOf(classOf("pc.allocLock")), 2);
}

TEST_F(LockContractTest, NestedAcquisitionInDeclaredOrderIsObserved)
{
    // Synthetic control: nest three locks named after the three
    // classes, in the declared order, and verify the edges simcheck
    // records all map back to strictly increasing ranks. This pins the
    // debug-name patterns and the edge plumbing the real-workload test
    // below relies on.
    Device dev(CostModel{}, 1 << 20);
    DeviceLock la, lb, lc;
    la.debugName = "tlb[0].entry[0]";
    lb.debugName = "pt.bucket[0]";
    lc.debugName = "pc.allocLock";
    dev.launch(1, 2, [&](Warp& w) {
        la.acquire(w);
        lb.acquire(w);
        lc.acquire(w);
        w.stall(50);
        lc.release(w);
        lb.release(w);
        la.release(w);
    });

    int edges = 0;
    SimCheck::get().forEachLockEdge(
        [&](const std::string& from, const std::string& to) {
            int rf = rankOf(classOf(from));
            int rt = rankOf(classOf(to));
            ASSERT_GE(rf, 0) << from;
            ASSERT_GE(rt, 0) << to;
            EXPECT_LT(rf, rt) << from << " -> " << to;
            ++edges;
        });
    EXPECT_EQ(edges, 3); // (la,lb), (la,lc), (lb,lc)
    EXPECT_EQ(SimCheck::get().count(ReportKind::LockCycle), 0u);
}

TEST_F(LockContractTest, FullStackWorkloadRespectsDeclaredOrder)
{
    // Drive the real stack hard enough to touch every lock class:
    // TLB-routed faults (tlb.entry), page-table buckets (pt.bucket),
    // and eviction pressure on a small cache (pc.alloc). Every nesting
    // simcheck observes must then be consistent with ap::kLockOrder —
    // the runtime shadow of aplint's source-level lock-order rule.
    core::GvmConfig g;
    g.useTlb = true;
    g.tlbEntries = 8;
    gpufs::Config cfg;
    cfg.numFrames = 16; // small: forces eviction through allocFrame
    hostio::BackingStore bs;
    Device dev(CostModel{}, size_t(64) << 20);
    hostio::HostIoEngine io(dev, bs);
    gpufs::GpuFs fs(dev, io, cfg);
    core::GvmRuntime rt(fs, g);

    const size_t words = 64 * 1024;
    hostio::FileId f = bs.create("wl", words * 4);
    dev.launch(2, 4, [&](Warp& w) {
        auto p = core::gvmmap<uint32_t>(w, rt, words * 4,
                                        hostio::O_GRDONLY, f, 0);
        // Stride across pages so each round faults, relinks, and
        // eventually recycles frames through the allocator.
        for (int i = 0; i < 24; ++i) {
            p.read(w);
            p.add(w, static_cast<int64_t>(rt.pageSize() / 4));
        }
        p.destroy(w);
    });

    SimCheck::get().forEachLockEdge(
        [&](const std::string& from, const std::string& to) {
            int rf = rankOf(classOf(from));
            int rt_ = rankOf(classOf(to));
            // Unknown names would mean a lock class escaped the
            // declaration — that is itself a failure.
            ASSERT_GE(rf, 0) << "undeclared lock in edge: " << from;
            ASSERT_GE(rt_, 0) << "undeclared lock in edge: " << to;
            EXPECT_LE(rf, rt_) << from << " -> " << to
                               << " inverts the declared order";
        });
    EXPECT_EQ(SimCheck::get().count(ReportKind::LockCycle), 0u);
}

} // namespace
} // namespace ap::sim::check
