#include <vector>

#include <gtest/gtest.h>

#include "sim/fiber.hh"

namespace ap::sim {
namespace {

TEST(Fiber, RunsToCompletion)
{
    int x = 0;
    Fiber f([&] { x = 42; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> trace;
    Fiber f([&] {
        trace.push_back(1);
        Fiber::current()->yield();
        trace.push_back(3);
        Fiber::current()->yield();
        trace.push_back(5);
    });
    f.resume();
    trace.push_back(2);
    f.resume();
    trace.push_back(4);
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber* seen = nullptr;
    Fiber f([&] { seen = Fiber::current(); });
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ManyInterleavedFibers)
{
    const int n = 100;
    std::vector<int> counts(n, 0);
    std::vector<std::unique_ptr<Fiber>> fs;
    for (int i = 0; i < n; ++i) {
        fs.push_back(std::make_unique<Fiber>([&, i] {
            for (int k = 0; k < 3; ++k) {
                counts[i]++;
                Fiber::current()->yield();
            }
        }));
    }
    for (int round = 0; round < 4; ++round)
        for (auto& f : fs)
            if (!f->finished())
                f->resume();
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(counts[i], 3);
}

TEST(Fiber, LocalStateSurvivesYield)
{
    long result = 0;
    Fiber f([&] {
        long acc = 0;
        for (int i = 1; i <= 10; ++i) {
            acc += i;
            Fiber::current()->yield();
        }
        result = acc;
    });
    while (!f.finished())
        f.resume();
    EXPECT_EQ(result, 55);
}

} // namespace
} // namespace ap::sim
