#include <gtest/gtest.h>

#include "sim/device.hh"

namespace ap::sim {
namespace {

/** Run @p fn on a single warp and return elapsed cycles. */
template <typename Fn>
Cycles
runOneWarp(Device& dev, Fn&& fn)
{
    return dev.launch(1, 1, [&](Warp& w) { fn(w); });
}

TEST(Warp, LaneIota)
{
    auto ids = Warp::laneIds();
    for (int i = 0; i < kWarpSize; ++i)
        EXPECT_EQ(ids[i], static_cast<uint32_t>(i));
}

TEST(Warp, GlobalLoadStoreRoundTrip)
{
    Device dev(CostModel{}, 1 << 20);
    Addr buf = dev.mem().alloc(kWarpSize * 4);
    runOneWarp(dev, [&](Warp& w) {
        auto addrs = LaneArray<Addr>::iota(buf, 4);
        LaneArray<uint32_t> vals;
        for (int i = 0; i < kWarpSize; ++i)
            vals[i] = 100 + i;
        w.storeGlobal(addrs, vals);
        auto back = w.loadGlobal<uint32_t>(addrs);
        for (int i = 0; i < kWarpSize; ++i)
            EXPECT_EQ(back[i], 100u + i);
    });
}

TEST(Warp, MaskedStoreLeavesInactiveLanes)
{
    Device dev(CostModel{}, 1 << 20);
    Addr buf = dev.mem().alloc(kWarpSize * 4);
    runOneWarp(dev, [&](Warp& w) {
        auto addrs = LaneArray<Addr>::iota(buf, 4);
        w.storeGlobal(addrs, LaneArray<uint32_t>::broadcast(7));
        w.storeGlobal(addrs, LaneArray<uint32_t>::broadcast(9), 0x3);
        auto back = w.loadGlobal<uint32_t>(addrs);
        EXPECT_EQ(back[0], 9u);
        EXPECT_EQ(back[1], 9u);
        for (int i = 2; i < kWarpSize; ++i)
            EXPECT_EQ(back[i], 7u);
    });
}

TEST(Warp, BallotAndVotes)
{
    Device dev(CostModel{}, 1 << 20);
    runOneWarp(dev, [&](Warp& w) {
        LaneArray<int> pred;
        for (int i = 0; i < kWarpSize; ++i)
            pred[i] = (i % 2 == 0);
        EXPECT_EQ(w.ballot(pred), 0x55555555u);
        EXPECT_FALSE(w.all(pred));
        EXPECT_TRUE(w.any(pred));
        EXPECT_TRUE(w.all(pred, 0x55555555u)); // only even lanes active
        EXPECT_FALSE(w.any(pred, 0xAAAAAAAAu));
    });
}

TEST(Warp, ShflBroadcast)
{
    Device dev(CostModel{}, 1 << 20);
    runOneWarp(dev, [&](Warp& w) {
        auto v = LaneArray<int>::iota(100);
        EXPECT_EQ(w.shfl(v, 5), 105);
        EXPECT_EQ(w.shfl(v, 31), 131);
    });
}

TEST(Warp, ShflXorButterflyReduction)
{
    Device dev(CostModel{}, 1 << 20);
    runOneWarp(dev, [&](Warp& w) {
        auto v = LaneArray<int>::iota(1); // 1..32, sum = 528
        for (int m = kWarpSize / 2; m >= 1; m >>= 1) {
            auto o = w.shflXor(v, m);
            for (int i = 0; i < kWarpSize; ++i)
                v[i] += o[i];
        }
        for (int i = 0; i < kWarpSize; ++i)
            EXPECT_EQ(v[i], 528);
    });
}

TEST(Warp, FfsPopc)
{
    EXPECT_EQ(ffs32(0), 0);
    EXPECT_EQ(ffs32(1), 1);
    EXPECT_EQ(ffs32(0x80000000u), 32);
    EXPECT_EQ(ffs32(0b1010000), 5);
    EXPECT_EQ(popc32(0), 0);
    EXPECT_EQ(popc32(0xffffffffu), 32);
    EXPECT_EQ(popc32(0x55555555u), 16);
}

TEST(Warp, AtomicAddAccumulatesAcrossWarps)
{
    Device dev(CostModel{}, 1 << 20);
    Addr ctr = dev.mem().alloc(8);
    dev.mem().store<uint64_t>(ctr, 0);
    dev.launch(4, 8, [&](Warp& w) { w.atomicAdd<uint64_t>(ctr, 3); });
    EXPECT_EQ(dev.mem().load<uint64_t>(ctr), 4u * 8u * 3u);
}

TEST(Warp, AtomicCasTakesOnlyOnce)
{
    Device dev(CostModel{}, 1 << 20);
    Addr flag = dev.mem().alloc(4);
    Addr wins = dev.mem().alloc(4);
    dev.mem().store<uint32_t>(flag, 0);
    dev.mem().store<uint32_t>(wins, 0);
    dev.launch(2, 8, [&](Warp& w) {
        if (w.atomicCas<uint32_t>(flag, 0, 1) == 0)
            w.atomicAdd<uint32_t>(wins, 1);
    });
    EXPECT_EQ(dev.mem().load<uint32_t>(wins), 1u);
}

TEST(Warp, CopyGlobalMovesBytes)
{
    Device dev(CostModel{}, 1 << 20);
    Addr src = dev.mem().alloc(8192);
    Addr dst = dev.mem().alloc(8192);
    for (int i = 0; i < 8192; ++i)
        dev.mem().store<uint8_t>(src + i, static_cast<uint8_t>(i * 7));
    runOneWarp(dev, [&](Warp& w) { w.copyGlobal(dst, src, 8192); });
    for (int i = 0; i < 8192; ++i)
        EXPECT_EQ(dev.mem().load<uint8_t>(dst + i),
                  static_cast<uint8_t>(i * 7));
}

TEST(Warp, IssueAdvancesTimeSerially)
{
    CostModel cm;
    Device dev(cm, 1 << 20);
    Cycles before = 0, after = 0;
    runOneWarp(dev, [&](Warp& w) {
        before = w.now();
        w.issue(100);
        after = w.now();
    });
    // A lone warp pays the dependent-chain latency per instruction.
    EXPECT_NEAR(after - before, 100 * cm.depLatencyPerInstr, 1e-9);
}

TEST(Warp, LoadLatencyMatchesModel)
{
    CostModel cm;
    Device dev(cm, 1 << 20);
    Addr buf = dev.mem().alloc(kWarpSize * 4);
    Cycles dt = 0;
    runOneWarp(dev, [&](Warp& w) {
        auto addrs = LaneArray<Addr>::iota(buf, 4);
        Cycles t0 = w.now();
        (void)w.loadGlobal<uint32_t>(addrs);
        dt = w.now() - t0;
    });
    // issue (1 instr) + 128B transfer + load latency
    Cycles expect = cm.depLatencyPerInstr + 128.0 / cm.memBytesPerCycle +
                    cm.memLatency;
    EXPECT_NEAR(dt, expect, 1e-6);
}

TEST(Warp, AsyncLoadOverlapsWithIssue)
{
    CostModel cm;
    Device dev(cm, 1 << 20);
    Addr buf = dev.mem().alloc(kWarpSize * 4);
    Cycles dt = 0;
    runOneWarp(dev, [&](Warp& w) {
        auto addrs = LaneArray<Addr>::iota(buf, 4);
        Cycles t0 = w.now();
        auto p = w.loadGlobalAsync<uint32_t>(addrs);
        w.issue(20); // overlapped work
        w.waitUntil(p.readyAt);
        dt = w.now() - t0;
    });
    // The 20 overlapped instructions hide inside the memory latency.
    Cycles expect = cm.depLatencyPerInstr + 128.0 / cm.memBytesPerCycle +
                    cm.memLatency;
    EXPECT_NEAR(dt, expect, 1e-6);
}

} // namespace
} // namespace ap::sim
