/**
 * @file
 * Unit tests for the tenant registry (DESIGN.md section 13): ASID
 * allocation and lifetime, weighted frame shares, and the release
 * refusals that keep teardown honest.
 */

#include <gtest/gtest.h>

#include "tenant/tenant.hh"

namespace ap::tenant {
namespace {

TEST(TenantRegistry, DefaultTenantIsAlwaysRegistered)
{
    TenantRegistry reg;
    EXPECT_TRUE(reg.active(kDefaultTenant));
    EXPECT_EQ(reg.nameOf(kDefaultTenant), "default");
    EXPECT_EQ(reg.cacheWeightOf(kDefaultTenant), 1u);
    EXPECT_EQ(reg.ioWeightOf(kDefaultTenant), 1u);
    EXPECT_EQ(reg.activeCount(), 1u);
}

TEST(TenantRegistry, AsidsAllocateSequentiallyFromOne)
{
    TenantRegistry reg;
    RegisterResult a = reg.registerTenant({"alpha", 2, 3});
    RegisterResult b = reg.registerTenant({"beta", 1, 1});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.id, 1u);
    EXPECT_EQ(b.id, 2u);
    EXPECT_EQ(reg.nameOf(a.id), "alpha");
    EXPECT_EQ(reg.statPrefix(a.id), "tenant.t1.");
    EXPECT_EQ(reg.cacheWeightOf(a.id), 2u);
    EXPECT_EQ(reg.ioWeightOf(a.id), 3u);
    EXPECT_EQ(reg.activeCount(), 3u);
}

TEST(TenantRegistry, AsidsAreNeverReused)
{
    TenantRegistry reg;
    RegisterResult a = reg.registerTenant({"a", 1, 1});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(reg.releaseTenant(a.id), TenantStatus::Ok);
    RegisterResult b = reg.registerTenant({"b", 1, 1});
    ASSERT_TRUE(b.ok());
    // The released ASID 1 must not come back: a stale TLB entry or
    // in-flight IO tagged 1 can then never alias tenant "b".
    EXPECT_NE(b.id, a.id);
    EXPECT_FALSE(reg.active(a.id));
    EXPECT_TRUE(reg.active(b.id));
}

TEST(TenantRegistry, ReleaseOfUnknownOrStaleAsidFails)
{
    TenantRegistry reg;
    EXPECT_EQ(reg.releaseTenant(42), TenantStatus::Unknown);
    RegisterResult a = reg.registerTenant({"a", 1, 1});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(reg.releaseTenant(a.id), TenantStatus::Ok);
    EXPECT_EQ(reg.releaseTenant(a.id), TenantStatus::Unknown);
}

TEST(TenantRegistry, ReleaseRefusesWhileFramesCharged)
{
    TenantRegistry reg;
    RegisterResult a = reg.registerTenant({"a", 1, 1});
    ASSERT_TRUE(a.ok());
    reg.noteFrameGained(a.id);
    EXPECT_EQ(reg.releaseTenant(a.id), TenantStatus::Busy);
    EXPECT_TRUE(reg.active(a.id));
    reg.noteFrameLost(a.id);
    EXPECT_EQ(reg.releaseTenant(a.id), TenantStatus::Ok);
}

TEST(TenantRegistry, WeightedFrameShares)
{
    TenantRegistry reg;
    reg.attachCacheFrames(100);
    RegisterResult heavy = reg.registerTenant({"heavy", 3, 1});
    RegisterResult light = reg.registerTenant({"light", 1, 1});
    ASSERT_TRUE(heavy.ok());
    ASSERT_TRUE(light.ok());
    // Weights: default 1 + heavy 3 + light 1 = 5.
    EXPECT_EQ(reg.frameShare(heavy.id), 60u);
    EXPECT_EQ(reg.frameShare(light.id), 20u);

    for (int i = 0; i < 20; ++i)
        reg.noteFrameGained(light.id);
    EXPECT_EQ(reg.framesOf(light.id), 20u);
    EXPECT_FALSE(reg.overShare(light.id)); // at the share, not over
    reg.noteFrameGained(light.id);
    EXPECT_TRUE(reg.overShare(light.id));
}

TEST(TenantRegistry, ZeroWeightTenantHasNoReservedShare)
{
    TenantRegistry reg;
    reg.attachCacheFrames(64);
    RegisterResult be = reg.registerTenant({"best-effort", 0, 0});
    ASSERT_TRUE(be.ok());
    EXPECT_EQ(reg.frameShare(be.id), 0u);
    // Any frame it holds is fair game for the eviction clock.
    reg.noteFrameGained(be.id);
    EXPECT_TRUE(reg.overShare(be.id));
}

TEST(TenantRegistry, ReleasedTenantWeighsNothing)
{
    TenantRegistry reg;
    reg.attachCacheFrames(100);
    RegisterResult a = reg.registerTenant({"a", 4, 4});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(reg.releaseTenant(a.id), TenantStatus::Ok);
    EXPECT_EQ(reg.cacheWeightOf(a.id), 0u);
    EXPECT_EQ(reg.ioWeightOf(a.id), 0u);
    EXPECT_EQ(reg.frameShare(a.id), 0u);
    // The default tenant's share recovers the whole cache.
    EXPECT_EQ(reg.frameShare(kDefaultTenant), 100u);
}

TEST(TenantRegistry, AsidSpaceExhaustionReportsTooMany)
{
    TenantRegistry reg;
    RegisterResult last;
    // ASID 0 is the default tenant; 1..kMaxTenants-1 are allocatable.
    for (uint32_t i = 1; i < kMaxTenants; ++i) {
        last = reg.registerTenant({"t", 1, 1});
        ASSERT_TRUE(last.ok()) << "register " << i;
        EXPECT_EQ(last.id, i);
    }
    RegisterResult overflow = reg.registerTenant({"t", 1, 1});
    EXPECT_FALSE(overflow.ok());
    EXPECT_EQ(overflow.status, TenantStatus::TooMany);
}

TEST(TenantRegistry, StatPrefixFallsBackForBogusIds)
{
    TenantRegistry reg;
    EXPECT_EQ(reg.statPrefix(7777), "tenant.t?.");
}

} // namespace
} // namespace ap::tenant
