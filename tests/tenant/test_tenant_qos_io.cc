/**
 * @file
 * Host-IO QoS tests: the deficit-round-robin dispatcher's weighted
 * bandwidth split under saturation, the zero-weight floor (no
 * starvation), dispatch determinism, and the queue-depth signal
 * counting in-flight writes (the admission gate reads it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hostio/host_io_engine.hh"
#include "tenant/tenant.hh"

namespace ap::hostio {
namespace {

struct QosFixture
{
    sim::Device dev{sim::CostModel{}, size_t(32) << 20};
    BackingStore bs;
    tenant::TenantRegistry reg;
};

/** Per-tenant async-read trace: completion cycles in finish order. */
struct Trace
{
    std::vector<double> heavy;
    std::vector<double> light;
};

/**
 * Two tenants with IO weights @p w_heavy : @p w_light each enqueue
 * @p reads_each reads of @p read_bytes at t=0 (saturating the host
 * DMA queue) and the completion cycle of every read is recorded.
 */
Trace
runContendedReads(uint32_t w_heavy, uint32_t w_light,
                  uint32_t reads_each, size_t read_bytes)
{
    QosFixture fx;
    FileId f = fx.bs.create("f", 4 << 20);
    tenant::RegisterResult heavy =
        fx.reg.registerTenant({"heavy", 1, w_heavy});
    tenant::RegisterResult light =
        fx.reg.registerTenant({"light", 1, w_light});
    EXPECT_TRUE(heavy.ok());
    EXPECT_TRUE(light.ok());

    HostIoEngine io(fx.dev, fx.bs);
    io.setTenantRegistry(&fx.reg);
    sim::Addr dst = fx.dev.mem().alloc(2 << 20);

    Trace tr;
    fx.dev.launch(1, 2, [&](sim::Warp& w) {
        const bool is_heavy = w.warpInBlock() == 0;
        w.setTenant(is_heavy ? heavy.id : light.id);
        std::vector<double>& done = is_heavy ? tr.heavy : tr.light;
        uint64_t file_base = is_heavy ? 0 : (2 << 20);
        sim::Addr dst_base = dst + (is_heavy ? 0 : (1 << 20));
        for (uint32_t i = 0; i < reads_each; ++i) {
            IoStatus st = io.readToGpuAsync(
                w, f, file_base + uint64_t(i) * read_bytes, read_bytes,
                dst_base + i * read_bytes,
                [&done, &fx](IoStatus io_st) {
                    EXPECT_EQ(io_st, IoStatus::Ok);
                    done.push_back(fx.dev.engine().now());
                });
            EXPECT_EQ(st, IoStatus::Ok);
        }
    });
    EXPECT_EQ(tr.heavy.size(), reads_each);
    EXPECT_EQ(tr.light.size(), reads_each);
    return tr;
}

TEST(TenantQosIo, DrrSplitsBandwidthByWeightUnderSaturation)
{
    // 4:1 weights, equal 16 KB reads: while both queues are backlogged
    // the heavy tenant gets four reads per round to the light one's
    // one, so when the heavy tenant drains its 32 reads the light
    // tenant should have completed roughly 32/4 = 8 of its own.
    Trace tr = runContendedReads(4, 1, 32, 16384);
    double heavy_end =
        *std::max_element(tr.heavy.begin(), tr.heavy.end());
    double light_end =
        *std::max_element(tr.light.begin(), tr.light.end());
    EXPECT_LT(heavy_end, light_end);
    size_t light_before = 0;
    for (double t : tr.light)
        if (t < heavy_end)
            light_before++;
    EXPECT_GE(light_before, 4u);
    EXPECT_LE(light_before, 16u);
}

TEST(TenantQosIo, ZeroWeightTenantIsFloorScheduledNotStarved)
{
    // A zero-weight tenant gets the floor quantum: it yields to any
    // weighted tenant but still makes steady progress — the floor
    // credit (4 KB/round) accumulates until it covers a 16 KB read,
    // so its first read completes while the heavy tenant's 8-round
    // backlog drains, and every one of its reads completes.
    Trace tr = runContendedReads(4, 0, 32, 16384);
    double heavy_end =
        *std::max_element(tr.heavy.begin(), tr.heavy.end());
    double light_first =
        *std::min_element(tr.light.begin(), tr.light.end());
    EXPECT_LT(light_first, heavy_end);
}

TEST(TenantQosIo, DispatchOrderIsDeterministic)
{
    Trace a = runContendedReads(3, 2, 24, 8192);
    Trace b = runContendedReads(3, 2, 24, 8192);
    EXPECT_EQ(a.heavy, b.heavy);
    EXPECT_EQ(a.light, b.light);
}

TEST(TenantQosIo, PerTenantQueueDepthSeesBacklog)
{
    QosFixture fx;
    FileId f = fx.bs.create("f", 1 << 20);
    tenant::RegisterResult t = fx.reg.registerTenant({"t", 1, 1});
    ASSERT_TRUE(t.ok());
    HostIoEngine io(fx.dev, fx.bs);
    io.setTenantRegistry(&fx.reg);
    sim::Addr dst = fx.dev.mem().alloc(1 << 16);
    fx.dev.launch(1, 2, [&](sim::Warp& w) {
        if (w.warpInBlock() == 0) {
            w.setTenant(t.id);
            for (int i = 0; i < 4; ++i)
                EXPECT_EQ(io.readToGpuAsync(w, f, i * 4096, 4096,
                                            dst + i * 4096,
                                            [](IoStatus) {}),
                          IoStatus::Ok);
        } else {
            // Sample inside the aggregation window (relative to the
            // warp's start — the kernel itself begins after the launch
            // latency), before the first dispatch event fires.
            w.stall(w.costModel().hostBatchWindow / 2);
            EXPECT_EQ(io.queueDepthOf(t.id), 4u);
            EXPECT_GE(io.queueDepth(), 4u);
        }
    });
    EXPECT_EQ(io.queueDepth(), 0u);
}

TEST(TenantQosIo, QueueDepthCountsInFlightWrites)
{
    // The serving admission gate defers dispatch on queueDepth();
    // a write-heavy phase must register there too, or writeback
    // storms would be invisible to admission control.
    QosFixture fx;
    FileId f = fx.bs.create("f", 1 << 20);
    HostIoEngine io(fx.dev, fx.bs);
    sim::Addr src = fx.dev.mem().alloc(1 << 16);
    size_t observed = 0;
    fx.dev.launch(1, 2, [&](sim::Warp& w) {
        if (w.warpInBlock() == 0) {
            EXPECT_EQ(io.writeFromGpu(w, f, 0, 1 << 16, src),
                      IoStatus::Ok);
        } else {
            w.stall(500); // the write's DMA is still in flight
            observed = io.queueDepth();
        }
    });
    EXPECT_GE(observed, 1u);
    EXPECT_EQ(io.queueDepth(), 0u);
}

} // namespace
} // namespace ap::hostio
