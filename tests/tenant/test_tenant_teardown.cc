// aplint: allow-file(leader-only) single-warp test harness: the launched warp is the
// leader by construction, exercising the teardown API without an election.

/**
 * @file
 * Tenant teardown tests: the TLB ASID shootdown (flushAsid drops a
 * dead tenant's cached translations and only that tenant's), the full
 * runtime teardown sequence, and negative tests for the simcheck
 * tenant auditor (cross-tenant touches and teardown residue must be
 * reported).
 */

#include <gtest/gtest.h>

#include "../core/fixture.hh"
#include "sim/check/simcheck.hh"
#include "tenant/tenant.hh"

namespace ap::core {
namespace {

GvmConfig
tlbConfig()
{
    GvmConfig g;
    g.useTlb = true;
    g.tlbEntries = 32;
    return g;
}

TEST(TenantTeardown, FlushAsidDropsOnlyThatTenantsEntries)
{
    StackFixture fx(tlbConfig());
    hostio::FileId f = fx.makeWordFile("f", 8192);
    tenant::TenantRegistry reg;
    tenant::RegisterResult t1 = reg.registerTenant({"dead", 1, 1});
    tenant::RegisterResult t2 = reg.registerTenant({"live", 1, 1});
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(t2.ok());
    uint32_t flushed = 0;
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        w.setTenant(t1.id);
        auto p1 = gvmmap<uint32_t>(w, *fx.rt, 4 * 4096,
                                   hostio::O_GRDONLY, f, 0);
        p1.read(w); // TLB caches the mapping under t1's ASID
        w.setTenant(t2.id);
        auto p2 = gvmmap<uint32_t>(w, *fx.rt, 4 * 4096,
                                   hostio::O_GRDONLY, f, 0);
        p2.read(w);
        SoftTlb* tlb = fx.rt->tlbFor(w);
        ASSERT_NE(tlb, nullptr);
        EXPECT_GT(tlb->countAsidEntriesHost(t1.id), 0u);
        EXPECT_GT(tlb->countAsidEntriesHost(t2.id), 0u);
        // Tenant t1 dies holding p1 (never destroyed): the shootdown
        // force-drops its counted entries and returns the held
        // page-table references, so nothing of t1 stays pinned.
        flushed = tlb->flushAsid(w, t1.id, fx.fs->cache());
        EXPECT_EQ(tlb->countAsidEntriesHost(t1.id), 0u);
        EXPECT_GT(tlb->countAsidEntriesHost(t2.id), 0u); // untouched
        p2.destroy(w);
    });
    EXPECT_GE(flushed, 1u);
    EXPECT_GE(fx.dev->stats().counter("core.tlb_flush_forced"), 1u);
    EXPECT_EQ(fx.fs->cache().residentRefcountHost(
                  gpufs::makePageKey(t1.id, f, 0)),
              0);
}

TEST(TenantTeardown, RuntimeTeardownAfterCleanShutdown)
{
    StackFixture fx(tlbConfig());
    hostio::FileId f = fx.makeWordFile("f", 8192);
    tenant::TenantRegistry reg;
    tenant::RegisterResult t1 = reg.registerTenant({"t", 1, 1});
    ASSERT_TRUE(t1.ok());
    fx.dev->launch(1, 2, [&](sim::Warp& w) {
        w.setTenant(t1.id);
        auto p = gvmmap<uint32_t>(w, *fx.rt, 8 * 4096,
                                  hostio::O_GRDONLY, f, 0);
        p.read(w);
        p.destroy(w);
    });
    // Quiesced: no TLB entries, no references — the full sequence
    // (TLB audit, cache scrub, ASID release) succeeds.
    EXPECT_EQ(fx.rt->teardownTenant(reg, t1.id),
              tenant::TenantStatus::Ok);
    EXPECT_FALSE(reg.active(t1.id));
    // And is not repeatable: the ASID is gone.
    EXPECT_EQ(fx.rt->teardownTenant(reg, t1.id),
              tenant::TenantStatus::Unknown);
}

/** Arms the checker in report-collection mode (the AP_SIMCHECK suite
 * idiom): reports are recorded for inspection, not fatal. */
class TenantAuditTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::check::SimCheck& sc = sim::check::SimCheck::get();
        sc.reset();
        sc.setEnabled(true);
        sc.setFailOnReport(false);
    }

    void
    TearDown() override
    {
        sim::check::SimCheck& sc = sim::check::SimCheck::get();
        sc.setEnabled(false);
        sc.reset();
    }
};

TEST_F(TenantAuditTest, CrossTenantInsertIsReported)
{
    sim::check::SimCheck& sc = sim::check::SimCheck::get();
    sc.warpTenant(0, 1);
    // A warp bound to tenant 1 inserts a page owned by tenant 2.
    sc.pcInsert(7, gpufs::makePageKey(2, 1, 5), 1, 0, 0.0);
    EXPECT_TRUE(sc.hasReport(sim::check::ReportKind::Invariant,
                             "cross-tenant"));
}

TEST_F(TenantAuditTest, SameTenantTouchesAreClean)
{
    sim::check::SimCheck& sc = sim::check::SimCheck::get();
    sc.warpTenant(0, 2);
    sc.pcInsert(7, gpufs::makePageKey(2, 1, 5), 1, 0, 0.0);
    sc.pcRefAdjust(7, gpufs::makePageKey(2, 1, 5), 1, 0, 0.0);
    EXPECT_EQ(sc.reports().size(), 0u);
}

TEST_F(TenantAuditTest, EvictionOfAnotherTenantsFrameIsExempt)
{
    // Reclaiming another tenant's cold frame is legal sharing of the
    // physical cache, not an isolation breach: claim/remove must not
    // trip the auditor.
    sim::check::SimCheck& sc = sim::check::SimCheck::get();
    uint64_t key = gpufs::makePageKey(2, 1, 5);
    sc.warpTenant(0, 2);
    sc.pcInsert(7, key, 1, 0, 0.0);
    sc.pcReady(7, key, 0, 0.0);
    sc.pcRefAdjust(7, key, -1, 0, 0.0);
    sc.warpTenant(1, 3); // a different tenant's warp evicts
    sc.pcClaim(7, key, 1, 0.0);
    sc.pcRemove(7, key, 1, 0.0);
    EXPECT_EQ(sc.reports().size(), 0u);
}

TEST_F(TenantAuditTest, TeardownResidualIsReported)
{
    sim::check::SimCheck& sc = sim::check::SimCheck::get();
    sc.warpTenant(0, 3);
    sc.pcInsert(7, gpufs::makePageKey(3, 1, 9), 1, 0, 0.0);
    // Teardown with the page still tracked: residual state a later
    // tenant reusing the ASID could alias.
    sc.pcTeardownTenant(7, 3, 0.0);
    EXPECT_TRUE(sc.hasReport(sim::check::ReportKind::Invariant,
                             "residual"));
}

TEST_F(TenantAuditTest, CleanTeardownIsSilent)
{
    sim::check::SimCheck& sc = sim::check::SimCheck::get();
    uint64_t key = gpufs::makePageKey(3, 1, 9);
    sc.warpTenant(0, 3);
    sc.pcInsert(7, key, 1, 0, 0.0);
    sc.pcReady(7, key, 0, 0.0);
    sc.pcRefAdjust(7, key, -1, 0, 0.0);
    sc.pcClaim(7, key, 0, 0.0);
    sc.pcRemove(7, key, 0, 0.0);
    sc.pcTeardownTenant(7, 3, 0.0);
    EXPECT_EQ(sc.reports().size(), 0u);
}

} // namespace
} // namespace ap::core
