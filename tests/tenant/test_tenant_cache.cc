// aplint: allow-file(leader-only) single-warp test harness: the launched warp is the
// leader by construction, exercising the cache API without an election.

/**
 * @file
 * Page-cache QoS tests: eviction isolation (an over-share streamer
 * recycles its own frames and cannot displace an under-share tenant's
 * residency), the reclaim-reserve fast path that keeps an under-share
 * tenant's allocation off the sweep convoy, and tenant teardown of
 * the cache footprint.
 */

#include <gtest/gtest.h>

#include "gpufs/page_cache.hh"
#include "tenant/tenant.hh"

namespace ap::gpufs {
namespace {

struct TenantCacheFixture
{
    explicit TenantCacheFixture(uint32_t frames = 32)
    {
        cfg.numFrames = frames;
        dev = std::make_unique<sim::Device>(sim::CostModel{}, 64 << 20);
        io = std::make_unique<hostio::HostIoEngine>(*dev, bs);
        cache = std::make_unique<PageCache>(*dev, *io, cfg);
        victim = reg.registerTenant({"victim", 1, 1});
        antag = reg.registerTenant({"antagonist", 1, 1});
        EXPECT_TRUE(victim.ok());
        EXPECT_TRUE(antag.ok());
    }

    hostio::FileId
    makeFile(const std::string& name, size_t size)
    {
        return bs.create(name, size);
    }

    /** Touch (acquire+release) pages [first, first+n) of @p f under
     * the warp's current tenant binding. */
    void
    touch(sim::Warp& w, tenant::TenantId asid, hostio::FileId f,
          uint64_t first, uint64_t n) AP_LEADER_ONLY
    {
        for (uint64_t i = 0; i < n; ++i) {
            PageKey key = makePageKey(asid, f, first + i);
            AcquireResult a = cache->acquirePage(w, key, 1, false);
            ASSERT_EQ(a.status, hostio::IoStatus::Ok);
            cache->releasePage(w, key, 1);
        }
    }

    Config cfg;
    hostio::BackingStore bs;
    tenant::TenantRegistry reg;
    std::unique_ptr<sim::Device> dev;
    std::unique_ptr<hostio::HostIoEngine> io;
    std::unique_ptr<PageCache> cache;
    tenant::RegisterResult victim;
    tenant::RegisterResult antag;
};

TEST(TenantCache, EvictionIsolationProtectsUnderShareResidency)
{
    TenantCacheFixture fx;
    fx.cache->setTenantRegistry(&fx.reg);
    hostio::FileId f = fx.makeFile("f", 256 * 4096);
    uint32_t refault_majors = 0;
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        // The victim warms a working set well under its fair share
        // (32 frames / 3 equal weights ≈ 10).
        w.setTenant(fx.victim.id);
        fx.touch(w, fx.victim.id, f, 0, 8);
        // The antagonist streams 64 distinct pages through the
        // 32-frame cache — far over its share, forcing evictions.
        w.setTenant(fx.antag.id);
        fx.touch(w, fx.antag.id, f, 64, 64);
        // The victim's pages must still be resident: the sweep
        // refuses under-share victims on behalf of an over-share
        // requester.
        w.setTenant(fx.victim.id);
        for (uint64_t i = 0; i < 8; ++i) {
            PageKey key = makePageKey(fx.victim.id, f, i);
            AcquireResult a = fx.cache->acquirePage(w, key, 1, false);
            ASSERT_EQ(a.status, hostio::IoStatus::Ok);
            if (a.majorFault)
                refault_majors++;
            fx.cache->releasePage(w, key, 1);
        }
    });
    EXPECT_EQ(refault_majors, 0u);
    EXPECT_GT(fx.dev->stats().counter("tenant.evict_skipped"), 0u);
    EXPECT_EQ(fx.dev->stats().counter("tenant.cross_evictions"), 0u);
}

TEST(TenantCache, WithoutRegistryTheClockEvictsColdVictimPages)
{
    // Ablation control: the same workload with QoS detached loses the
    // victim's residency — the guarantee above is the policy, not an
    // artifact of the clock.
    TenantCacheFixture fx;
    hostio::FileId f = fx.makeFile("f", 256 * 4096);
    uint32_t refault_majors = 0;
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        w.setTenant(fx.victim.id);
        fx.touch(w, fx.victim.id, f, 0, 8);
        w.setTenant(fx.antag.id);
        fx.touch(w, fx.antag.id, f, 64, 64);
        w.setTenant(fx.victim.id);
        for (uint64_t i = 0; i < 8; ++i) {
            PageKey key = makePageKey(fx.victim.id, f, i);
            AcquireResult a = fx.cache->acquirePage(w, key, 1, false);
            ASSERT_EQ(a.status, hostio::IoStatus::Ok);
            if (a.majorFault)
                refault_majors++;
            fx.cache->releasePage(w, key, 1);
        }
    });
    EXPECT_GT(refault_majors, 0u);
}

TEST(TenantCache, ReclaimReserveServesUnderShareAllocations)
{
    TenantCacheFixture fx;
    fx.cache->setTenantRegistry(&fx.reg);
    hostio::FileId f = fx.makeFile("f", 256 * 4096);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        // The antagonist's sweeps pre-evict extra clean victims into
        // the reclaim reserve while they hold allocLock anyway.
        w.setTenant(fx.antag.id);
        fx.touch(w, fx.antag.id, f, 64, 64);
        // A subsequent under-share allocation is served from the
        // reserve under the O(1) lock — never behind a sweep.
        w.setTenant(fx.victim.id);
        fx.touch(w, fx.victim.id, f, 0, 4);
    });
    EXPECT_GT(fx.dev->stats().counter("tenant.reserve_refills"), 0u);
    EXPECT_GT(fx.dev->stats().counter("tenant.reserve_hits"), 0u);
}

TEST(TenantCache, TeardownScrubsFramesAndFreesTheAsid)
{
    TenantCacheFixture fx;
    fx.cache->setTenantRegistry(&fx.reg);
    hostio::FileId f = fx.makeFile("f", 64 * 4096);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        w.setTenant(fx.antag.id);
        fx.touch(w, fx.antag.id, f, 0, 16);
    });
    EXPECT_EQ(fx.reg.framesOf(fx.antag.id), 16u);
    size_t free_before = fx.cache->freeFrameCount();
    EXPECT_EQ(fx.cache->teardownTenantHost(fx.antag.id),
              tenant::TenantStatus::Ok);
    EXPECT_EQ(fx.reg.framesOf(fx.antag.id), 0u);
    EXPECT_GT(fx.cache->freeFrameCount(), free_before);
    EXPECT_EQ(fx.reg.releaseTenant(fx.antag.id), tenant::TenantStatus::Ok);
}

TEST(TenantCache, TeardownRefusesWhilePagesAreReferenced)
{
    TenantCacheFixture fx;
    fx.cache->setTenantRegistry(&fx.reg);
    hostio::FileId f = fx.makeFile("f", 64 * 4096);
    PageKey held = makePageKey(fx.victim.id, f, 3);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        w.setTenant(fx.victim.id);
        AcquireResult a = fx.cache->acquirePage(w, held, 1, false);
        ASSERT_EQ(a.status, hostio::IoStatus::Ok);
        // Hold the reference across the kernel boundary: the tenant
        // has not quiesced, so teardown must refuse.
    });
    EXPECT_EQ(fx.cache->teardownTenantHost(fx.victim.id),
              tenant::TenantStatus::Busy);
    EXPECT_EQ(fx.reg.releaseTenant(fx.victim.id), tenant::TenantStatus::Busy);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        w.setTenant(fx.victim.id);
        fx.cache->releasePage(w, held, 1);
    });
    EXPECT_EQ(fx.cache->teardownTenantHost(fx.victim.id),
              tenant::TenantStatus::Ok);
    EXPECT_EQ(fx.reg.releaseTenant(fx.victim.id), tenant::TenantStatus::Ok);
}

TEST(TenantCache, SameOffsetDistinctTenantsGetDistinctPages)
{
    // The ASID is part of the page key: two tenants mapping the same
    // file offset must get distinct entries (distinct frames), not a
    // shared mapping that would leak data across address spaces.
    TenantCacheFixture fx;
    fx.cache->setTenantRegistry(&fx.reg);
    hostio::FileId f = fx.makeFile("f", 64 * 4096);
    sim::Addr fa = 0, fb = 0;
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        w.setTenant(fx.victim.id);
        PageKey ka = makePageKey(fx.victim.id, f, 0);
        AcquireResult a = fx.cache->acquirePage(w, ka, 1, false);
        ASSERT_EQ(a.status, hostio::IoStatus::Ok);
        fa = a.frameAddr;
        w.setTenant(fx.antag.id);
        PageKey kb = makePageKey(fx.antag.id, f, 0);
        AcquireResult b = fx.cache->acquirePage(w, kb, 1, false);
        ASSERT_EQ(b.status, hostio::IoStatus::Ok);
        EXPECT_TRUE(b.majorFault); // not a hit on the other tenant's
        fb = b.frameAddr;
        fx.cache->releasePage(w, ka, 1);
        fx.cache->releasePage(w, kb, 1);
        w.setTenant(fx.victim.id);
    });
    EXPECT_NE(fa, fb);
}

} // namespace
} // namespace ap::gpufs
