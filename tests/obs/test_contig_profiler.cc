/**
 * @file
 * ContigProfiler unit tests: run merge/split bookkeeping under
 * scripted resident/evicted page sequences with exact counter values,
 * and the per-group histogram snapshot (docs/OBSERVABILITY.md
 * "Translation telemetry").
 */

#include <gtest/gtest.h>

#include "gpufs/contig_profiler.hh"

namespace ap::gpufs {
namespace {

TEST(ContigProfiler, GrowsRunsAndCountsBridgingMerges)
{
    ContigProfiler cp;
    StatGroup st;
    hostio::FileId f = 1;
    cp.noteResidentPage(st, makePageKey(f, 0));
    cp.noteResidentPage(st, makePageKey(f, 2));
    EXPECT_EQ(cp.residentPages(), 2u);
    EXPECT_EQ(cp.runCount(), 2u);
    EXPECT_EQ(cp.maxRunNow(), 1u);
    EXPECT_EQ(st.counter("contig.merges"), 0u);

    // Page 1 bridges the two runs into one: exactly one merge.
    cp.noteResidentPage(st, makePageKey(f, 1));
    EXPECT_EQ(cp.residentPages(), 3u);
    EXPECT_EQ(cp.runCount(), 1u);
    EXPECT_EQ(cp.maxRunNow(), 3u);
    EXPECT_EQ(st.counter("contig.merges"), 1u);
    EXPECT_EQ(st.scalar("contig.max_run"), 3.0);

    // Extending an existing run is not a merge.
    cp.noteResidentPage(st, makePageKey(f, 3));
    EXPECT_EQ(cp.runCount(), 1u);
    EXPECT_EQ(cp.maxRunNow(), 4u);
    EXPECT_EQ(st.counter("contig.merges"), 1u);
}

TEST(ContigProfiler, InteriorEvictionSplitsRun)
{
    ContigProfiler cp;
    StatGroup st;
    hostio::FileId f = 1;
    for (uint64_t pg = 0; pg < 5; ++pg)
        cp.noteResidentPage(st, makePageKey(f, pg));
    ASSERT_EQ(cp.runCount(), 1u);
    ASSERT_EQ(cp.maxRunNow(), 5u);

    // Evicting an interior page splits one run into two.
    cp.noteEvictedPage(st, makePageKey(f, 2));
    EXPECT_EQ(cp.residentPages(), 4u);
    EXPECT_EQ(cp.runCount(), 2u);
    EXPECT_EQ(cp.maxRunNow(), 2u);
    EXPECT_EQ(st.counter("contig.splits"), 1u);

    // Trimming a run's edge is not a split.
    cp.noteEvictedPage(st, makePageKey(f, 0));
    EXPECT_EQ(cp.runCount(), 2u);
    EXPECT_EQ(st.counter("contig.splits"), 1u);

    cp.noteEvictedPage(st, makePageKey(f, 1));
    cp.noteEvictedPage(st, makePageKey(f, 3));
    cp.noteEvictedPage(st, makePageKey(f, 4));
    EXPECT_EQ(cp.residentPages(), 0u);
    EXPECT_EQ(cp.runCount(), 0u);
    EXPECT_EQ(cp.maxRunNow(), 0u);
    // The high-water scalar keeps the historical maximum.
    EXPECT_EQ(st.scalar("contig.max_run"), 5.0);
}

TEST(ContigProfiler, GroupsByTenantAndFile)
{
    ContigProfiler cp;
    StatGroup st;
    // Same page numbers in different (tenant, file) groups never
    // coalesce with each other.
    cp.noteResidentPage(st, makePageKey(1, 0));
    cp.noteResidentPage(st, makePageKey(2, 1));
    cp.noteResidentPage(st, makePageKey(tenant::TenantId(3), 1, 1));
    EXPECT_EQ(cp.residentPages(), 3u);
    EXPECT_EQ(cp.runCount(), 3u);
    EXPECT_EQ(cp.maxRunNow(), 1u);
    EXPECT_EQ(st.counter("contig.merges"), 0u);
}

TEST(ContigProfiler, SnapshotBuildsPerGroupHistograms)
{
    ContigProfiler cp;
    StatGroup st;
    // Group (default tenant, file 1): pages 0..3, one run of four.
    for (uint64_t pg = 0; pg < 4; ++pg)
        cp.noteResidentPage(st, makePageKey(1, pg));
    // Group (default tenant, file 2): a single page.
    cp.noteResidentPage(st, makePageKey(2, 7));
    // Group (tenant 3, file 1): a single page.
    cp.noteResidentPage(st, makePageKey(tenant::TenantId(3), 1, 9));

    cp.exportSnapshot(st);
    const Histogram* all = st.findHistogram("contig.runs");
    ASSERT_NE(all, nullptr);
    EXPECT_EQ(all->count(), 3u);
    EXPECT_EQ(all->max(), 4.0);
    const Histogram* f1 = st.findHistogram("contig.f1.runs");
    ASSERT_NE(f1, nullptr);
    EXPECT_EQ(f1->count(), 1u);
    EXPECT_EQ(f1->max(), 4.0);
    const Histogram* f2 = st.findHistogram("contig.f2.runs");
    ASSERT_NE(f2, nullptr);
    EXPECT_EQ(f2->count(), 1u);
    EXPECT_EQ(f2->max(), 1.0);
    // Non-default tenants carry the t<asid> prefix.
    const Histogram* t3 = st.findHistogram("contig.t3.f1.runs");
    ASSERT_NE(t3, nullptr);
    EXPECT_EQ(t3->count(), 1u);
    EXPECT_EQ(st.scalar("contig.resident_pages"), 6.0);
    EXPECT_EQ(st.scalar("contig.resident_runs"), 3.0);
    EXPECT_EQ(st.scalar("contig.max_resident_run"), 4.0);

    // A group that goes fully non-resident is reset by the next
    // snapshot, never left stale.
    cp.noteEvictedPage(st, makePageKey(2, 7));
    cp.exportSnapshot(st);
    f2 = st.findHistogram("contig.f2.runs");
    ASSERT_NE(f2, nullptr);
    EXPECT_EQ(f2->count(), 0u);
    all = st.findHistogram("contig.runs");
    ASSERT_NE(all, nullptr);
    EXPECT_EQ(all->count(), 2u);
    EXPECT_EQ(st.scalar("contig.resident_pages"), 5.0);
}

} // namespace
} // namespace ap::gpufs
