// aplint: allow-file(leader-only) single-warp test harness: the launched warp is the
// leader by construction, driving the TLB/page-cache APIs without an election.

/**
 * @file
 * Translation-telemetry tests (docs/OBSERVABILITY.md "Translation
 * telemetry"): every TLB eviction-reason class is driven by a scripted
 * deterministic pattern and checked for exact counter values —
 * dead-on-arrival classification, entry lifetime and reuse-distance
 * histogram population, page-cache frame-lifetime accounting, and the
 * simcheck cross-check that per-entry hit counts sum to the TLB's hit
 * counter.
 */

#include <gtest/gtest.h>

#include "../core/fixture.hh"
#include "sim/check/simcheck.hh"
#include "tenant/tenant.hh"

namespace ap::core {
namespace {

GvmConfig
tlbConfig(uint32_t entries = 32)
{
    GvmConfig g;
    g.useTlb = true;
    g.tlbEntries = entries;
    return g;
}

TEST(TlbTelemetry, InvalidationRetireRecordsHitsAndReuseDistance)
{
    StackFixture fx(tlbConfig());
    hostio::FileId f = fx.makeWordFile("f", 4096);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        auto p = gvmmap<uint32_t>(w, *fx.rt, 4 * 4096, hostio::O_GRDONLY,
                                  f, 0);
        p.read(w); // miss: installs the page-0 entry
        auto q = p.copyUnlinked(w);
        q.read(w); // one TLB hit on the installed entry
        q.destroy(w);
        p.destroy(w); // count reaches zero: Invalidation retire
    });
    const StatGroup& s = fx.dev->stats();
    EXPECT_EQ(s.counter("tlb.inserts"), 1u);
    EXPECT_EQ(s.counter("tlb.evict.invalidation"), 1u);
    EXPECT_EQ(s.counter("tlb.evict.conflict"), 0u);
    EXPECT_EQ(s.counter("tlb.evict.shootdown"), 0u);
    EXPECT_EQ(s.counter("tlb.evict.teardown"), 0u);
    // The entry absorbed one hit, so it is not dead-on-arrival and its
    // hit count lands in the retired-hits counter.
    EXPECT_EQ(s.counter("tlb.doa.invalidation"), 0u);
    EXPECT_EQ(s.counter("tlb.entry_hits_retired"), 1u);
    const Histogram* life = s.findHistogram("tlb.entry_lifetime");
    ASSERT_NE(life, nullptr);
    EXPECT_EQ(life->count(), 1u);
    EXPECT_GT(life->min(), 0.0);
    const Histogram* reuse = s.findHistogram("tlb.reuse_distance");
    ASSERT_NE(reuse, nullptr);
    EXPECT_EQ(reuse->count(), 1u);
    EXPECT_GE(reuse->min(), 0.0);
}

TEST(TlbTelemetry, ZeroHitEntryIsDeadOnArrival)
{
    StackFixture fx(tlbConfig());
    hostio::FileId f = fx.makeWordFile("f", 4096);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        auto p = gvmmap<uint32_t>(w, *fx.rt, 4 * 4096, hostio::O_GRDONLY,
                                  f, 0);
        p.read(w);    // install
        p.destroy(w); // retire with zero hits
    });
    const StatGroup& s = fx.dev->stats();
    EXPECT_EQ(s.counter("tlb.evict.invalidation"), 1u);
    EXPECT_EQ(s.counter("tlb.doa.invalidation"), 1u);
    EXPECT_EQ(s.counter("tlb.entry_hits_retired"), 0u);
    // No hit ever happened, so no reuse distance was sampled.
    const Histogram* reuse = s.findHistogram("tlb.reuse_distance");
    EXPECT_TRUE(reuse == nullptr || reuse->count() == 0u);
}

TEST(TlbTelemetry, ConflictRetiresCountZeroVictim)
{
    // Scripted single-slot TLB: zero the victim's count through the
    // proactive-decrement path (lookupAndRef with n = -1 leaves the
    // mapping cached), then install a conflicting page over it.
    StackFixture fx(tlbConfig(/*entries=*/1));
    hostio::FileId f = fx.makeWordFile("f", 2 * 1024);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        gpufs::PageCache& cache = fx.fs->cache();
        SoftTlb* tlb = fx.rt->tlbFor(w);
        ASSERT_NE(tlb, nullptr);
        gpufs::PageKey k0 = gpufs::makePageKey(f, 0);
        gpufs::PageKey k1 = gpufs::makePageKey(f, 1);

        gpufs::AcquireResult r0 = cache.acquirePage(w, k0, 1, false);
        ASSERT_TRUE(r0.ok());
        ASSERT_TRUE(tlb->insertAfterAcquire(w, k0, r0.frameAddr, 1,
                                            cache));
        sim::Addr fa = 0;
        ASSERT_TRUE(tlb->lookupAndRef(w, k0, -1, fa)); // count -> 0
        EXPECT_EQ(tlb->countOfHost(k0), 0);

        gpufs::AcquireResult r1 = cache.acquirePage(w, k1, 1, false);
        ASSERT_TRUE(r1.ok());
        // Conflict: the count-zero k0 entry is retired (returning its
        // page-table reference) and k1 takes the slot.
        ASSERT_TRUE(tlb->insertAfterAcquire(w, k1, r1.frameAddr, 1,
                                            cache));
        ASSERT_TRUE(tlb->unref(w, k1, 1, cache));
    });
    const StatGroup& s = fx.dev->stats();
    EXPECT_EQ(s.counter("tlb.evict.conflict"), 1u);
    // The victim had one hit (the decrementing lookup), so it is not
    // dead-on-arrival; k1 never hit, so its Invalidation retire is.
    EXPECT_EQ(s.counter("tlb.doa.conflict"), 0u);
    EXPECT_EQ(s.counter("tlb.evict.invalidation"), 1u);
    EXPECT_EQ(s.counter("tlb.doa.invalidation"), 1u);
    EXPECT_EQ(s.counter("core.tlb_evictions"), 1u);
    // Every reference went back to the page cache.
    EXPECT_EQ(fx.fs->cache().residentRefcountHost(
                  gpufs::makePageKey(f, 0)),
              0);
    EXPECT_EQ(fx.fs->cache().residentRefcountHost(
                  gpufs::makePageKey(f, 1)),
              0);
}

TEST(TlbTelemetry, ShootdownRetireClassifiedPerReason)
{
    StackFixture fx(tlbConfig());
    hostio::FileId f = fx.makeWordFile("f", 4096);
    tenant::TenantRegistry reg;
    tenant::RegisterResult t1 = reg.registerTenant({"dead", 1, 1});
    ASSERT_TRUE(t1.ok());
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        w.setTenant(t1.id);
        auto p = gvmmap<uint32_t>(w, *fx.rt, 4 * 4096, hostio::O_GRDONLY,
                                  f, 0);
        p.read(w); // caches the mapping under t1's ASID
        SoftTlb* tlb = fx.rt->tlbFor(w);
        ASSERT_NE(tlb, nullptr);
        // The tenant dies holding p: the shootdown force-drops the
        // counted entry (p is deliberately not destroyed).
        EXPECT_EQ(tlb->flushAsid(w, t1.id, fx.fs->cache()), 1u);
    });
    const StatGroup& s = fx.dev->stats();
    EXPECT_EQ(s.counter("tlb.evict.shootdown"), 1u);
    EXPECT_EQ(s.counter("tlb.doa.shootdown"), 1u); // never hit
    EXPECT_EQ(s.counter("tlb.evict.invalidation"), 0u);
}

TEST(TlbTelemetry, LiveEntryAtLaunchEndRetiresAsTeardown)
{
    StackFixture fx(tlbConfig());
    hostio::FileId f = fx.makeWordFile("f", 4096);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        gpufs::PageCache& cache = fx.fs->cache();
        SoftTlb* tlb = fx.rt->tlbFor(w);
        ASSERT_NE(tlb, nullptr);
        gpufs::PageKey k0 = gpufs::makePageKey(f, 0);
        gpufs::AcquireResult r0 = cache.acquirePage(w, k0, 1, false);
        ASSERT_TRUE(r0.ok());
        ASSERT_TRUE(tlb->insertAfterAcquire(w, k0, r0.frameAddr, 1,
                                            cache));
        // Entry left live: the TLB dies with the launch and must
        // charge the retirement to Teardown.
    });
    const StatGroup& s = fx.dev->stats();
    EXPECT_EQ(s.counter("tlb.evict.teardown"), 1u);
    EXPECT_EQ(s.counter("tlb.doa.teardown"), 1u);
    const Histogram* life = s.findHistogram("tlb.entry_lifetime");
    ASSERT_NE(life, nullptr);
    EXPECT_EQ(life->count(), 1u);
    // The deliberately-leaked reference is still visible: teardown
    // telemetry only observes, it does not release.
    EXPECT_EQ(fx.fs->cache().residentRefcountHost(
                  gpufs::makePageKey(f, 0)),
              1);
}

TEST(TlbTelemetry, ReuseDistanceMeasuresGapBetweenHits)
{
    StackFixture fx(tlbConfig());
    hostio::FileId f = fx.makeWordFile("f", 4096);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        auto p = gvmmap<uint32_t>(w, *fx.rt, 4 * 4096, hostio::O_GRDONLY,
                                  f, 0);
        p.read(w); // install
        for (int i = 0; i < 3; ++i) {
            // A long idle gap between hits: kernels pace via warp
            // stalls (launch latency makes absolute waits fragile).
            w.stall(1000);
            auto q = p.copyUnlinked(w);
            q.read(w);
            q.destroy(w);
        }
        p.destroy(w);
    });
    const Histogram* reuse =
        fx.dev->stats().findHistogram("tlb.reuse_distance");
    ASSERT_NE(reuse, nullptr);
    EXPECT_EQ(reuse->count(), 3u);
    // Each hit was preceded by a 1000-cycle stall, so every sampled
    // distance must be at least that.
    EXPECT_GE(reuse->min(), 1000.0);
}

// ---------------------------------------------------------------------
// simcheck cross-check: per-entry hit counts vs. the TLB hit counter
// ---------------------------------------------------------------------

class TlbHitSumAudit : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::check::SimCheck& sc = sim::check::SimCheck::get();
        sc.reset();
        sc.setEnabled(true);
        sc.setFailOnReport(false);
    }

    void
    TearDown() override
    {
        sim::check::SimCheck& sc = sim::check::SimCheck::get();
        sc.setEnabled(false);
        sc.reset();
    }
};

TEST_F(TlbHitSumAudit, CleanWorkloadPassesAudit)
{
    StackFixture fx(tlbConfig());
    hostio::FileId f = fx.makeWordFile("f", 8192);
    fx.dev->launch(1, 4, [&](sim::Warp& w) {
        auto p = gvmmap<uint32_t>(w, *fx.rt, 8 * 4096, hostio::O_GRDONLY,
                                  f, 0);
        for (int i = 0; i < 4; ++i) {
            auto q = p.copyUnlinked(w);
            q.read(w);
            q.destroy(w);
        }
        p.destroy(w);
    });
    // The TLB destructors ran at launch end and audited themselves.
    EXPECT_GT(fx.dev->stats().counter("core.tlb_hits"), 0u);
    EXPECT_FALSE(sim::check::SimCheck::get().hasReport(
        sim::check::ReportKind::Invariant, "hit-sum mismatch"));
}

TEST_F(TlbHitSumAudit, MismatchedSumsAreReported)
{
    sim::check::SimCheck::get().tlbHitSumAudit(3, 5, "tlb[test]");
    sim::check::SimCheck& sc = sim::check::SimCheck::get();
    EXPECT_GE(sc.count(sim::check::ReportKind::Invariant), 1u);
    EXPECT_TRUE(sc.hasReport(sim::check::ReportKind::Invariant,
                             "hit-sum mismatch"));
    EXPECT_TRUE(sc.hasReport(sim::check::ReportKind::Invariant,
                             "tlb[test]"));
}

TEST_F(TlbHitSumAudit, EqualSumsStaySilent)
{
    sim::check::SimCheck::get().tlbHitSumAudit(7, 7, "tlb[test]");
    EXPECT_EQ(
        sim::check::SimCheck::get().count(
            sim::check::ReportKind::Invariant),
        0u);
}

// ---------------------------------------------------------------------
// Page-cache frame-lifetime telemetry
// ---------------------------------------------------------------------

TEST(PageCacheTelemetry, ClockSweepEvictionClassifiedAndNotDoa)
{
    // 4 frames, 5 pages touched-and-released in order: the fifth
    // acquire must clock-sweep exactly one resident frame, and that
    // frame saw a demand hit, so it is not dead-on-arrival.
    StackFixture fx(GvmConfig{}, /*frames=*/4);
    hostio::FileId f = fx.makeWordFile("f", 8 * 1024);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        gpufs::PageCache& cache = fx.fs->cache();
        for (uint64_t pg = 0; pg < 5; ++pg) {
            gpufs::AcquireResult r =
                cache.acquirePage(w, gpufs::makePageKey(f, pg), 1,
                                  false);
            ASSERT_TRUE(r.ok());
            cache.releasePage(w, gpufs::makePageKey(f, pg), 1);
        }
    });
    const StatGroup& s = fx.dev->stats();
    EXPECT_EQ(s.counter("pagecache.life.fills"), 5u);
    EXPECT_EQ(s.counter("pagecache.evict.clock_sweep"), 1u);
    EXPECT_EQ(s.counter("pagecache.doa.clock_sweep"), 0u);
    const Histogram* life =
        s.findHistogram("pagecache.life.lifetime");
    ASSERT_NE(life, nullptr);
    EXPECT_EQ(life->count(), 1u);
    // Every filled frame was demand-hit by its faulting warp.
    const Histogram* first =
        s.findHistogram("pagecache.life.fill_to_first_hit");
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->count(), 5u);
    const Histogram* hits =
        s.findHistogram("pagecache.life.demand_hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->count(), 1u);
    EXPECT_EQ(hits->min(), 1.0);
}

TEST(PageCacheTelemetry, TenantTeardownDoaAndContiguitySnapshot)
{
    StackFixture fx;
    hostio::FileId f = fx.makeWordFile("f", 4 * 1024);
    tenant::TenantRegistry reg;
    tenant::RegisterResult t1 = reg.registerTenant({"t", 1, 1});
    ASSERT_TRUE(t1.ok());
    fx.fs->cache().setTenantRegistry(&reg);
    fx.dev->launch(1, 1, [&](sim::Warp& w) {
        w.setTenant(t1.id);
        gpufs::PageCache& cache = fx.fs->cache();
        // Page 0: demand-faulted (its acquire is the first demand
        // touch). Page 1: advisory prefetch only, never touched.
        gpufs::PageKey k0 = gpufs::makePageKey(t1.id, f, 0);
        gpufs::AcquireResult r = cache.acquirePage(w, k0, 1, false);
        ASSERT_TRUE(r.ok());
        cache.releasePage(w, k0, 1);
        EXPECT_EQ(cache.prefetchPage(
                      w, gpufs::makePageKey(t1.id, f, 1)),
                  gpufs::PrefetchResult::Started);
        w.stall(50000); // let the asynchronous fill land
    });
    const StatGroup& s = fx.dev->stats();
    EXPECT_EQ(s.counter("tenant.t1.major_faults"), 1u);

    // Snapshot contiguity while both pages are resident: one run of
    // two pages in the (t1, f) group.
    fx.fs->cache().exportTranslationStatsHost();
    const Histogram* runs = s.findHistogram("contig.runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->count(), 1u);
    EXPECT_EQ(runs->max(), 2.0);
    EXPECT_EQ(s.scalar("contig.resident_pages"), 2.0);

    // Teardown unbinds both frames; the prefetched one never saw a
    // demand hit, so it is the only dead-on-arrival frame.
    ASSERT_EQ(fx.fs->cache().teardownTenantHost(t1.id),
              tenant::TenantStatus::Ok);
    ASSERT_EQ(reg.releaseTenant(t1.id), tenant::TenantStatus::Ok);
    fx.fs->cache().setTenantRegistry(nullptr);
    EXPECT_EQ(s.counter("pagecache.evict.teardown"), 2u);
    EXPECT_EQ(s.counter("pagecache.doa.teardown"), 1u);
    const Histogram* hits =
        s.findHistogram("pagecache.life.demand_hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->count(), 2u);
    EXPECT_EQ(hits->min(), 0.0);
    EXPECT_EQ(hits->max(), 1.0);

    // A fresh snapshot after teardown drops the stale run histograms.
    fx.fs->cache().exportTranslationStatsHost();
    runs = s.findHistogram("contig.runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->count(), 0u);
    EXPECT_EQ(s.scalar("contig.resident_pages"), 0.0);
}

} // namespace
} // namespace ap::core
