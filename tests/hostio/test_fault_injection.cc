/**
 * @file
 * Fault injection and retry behavior of the host I/O engine: the
 * deterministic injector, retry-until-success with backoff, terminal
 * failures surfacing IoError to the caller, batch isolation (one
 * poisoned request does not wedge its batch), and the checked EOF
 * path shared by every transfer variant.
 */

#include <gtest/gtest.h>

#include "hostio/host_io_engine.hh"

namespace ap::hostio {
namespace {

struct FiFixture
{
    sim::Device dev{sim::CostModel{}, 1 << 22};
    BackingStore bs;
    /** Scratch device buffer shared by the tests. */
    sim::Addr buf = dev.mem().alloc(1 << 20);
};

TEST(FaultInjector, DecisionsAreDeterministic)
{
    FaultInjector::Config cfg;
    cfg.seed = 7;
    cfg.transientReadRate = 0.5;
    FaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.onRead(1, i * 4096, 4096, 0),
                  b.onRead(1, i * 4096, 4096, 0));
}

TEST(FaultInjector, RetriesDrawIndependently)
{
    FaultInjector::Config cfg;
    cfg.seed = 7;
    cfg.transientReadRate = 0.5;
    FaultInjector fi(cfg);
    // With a 50% rate, some attempt in the first dozen must differ
    // from attempt 0 — a seed-only draw would repeat forever.
    Fault first = fi.onRead(1, 0, 4096, 0);
    bool varied = false;
    for (int a = 1; a < 12 && !varied; ++a)
        varied = fi.onRead(1, 0, 4096, a) != first;
    EXPECT_TRUE(varied);
}

TEST(FaultInjector, ZeroRatesInjectNothing)
{
    FaultInjector fi;
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(fi.onRead(0, i * 512, 512, 0), Fault::None);
        EXPECT_EQ(fi.onWrite(0, i * 512, 512, 0), Fault::None);
        EXPECT_EQ(fi.completionDelay(0, i * 512, 0), 0.0);
    }
}

TEST(FaultInjector, PersistentRangesOverlapByBytes)
{
    FaultInjector fi;
    fi.failReads(2, 4096, 4096); // second page of file 2
    EXPECT_EQ(fi.onRead(2, 0, 4096, 0), Fault::None);
    EXPECT_EQ(fi.onRead(2, 4096, 4096, 0), Fault::Persistent);
    EXPECT_EQ(fi.onRead(2, 8000, 1000, 3), Fault::Persistent);
    EXPECT_EQ(fi.onRead(2, 8192, 4096, 0), Fault::None);
    EXPECT_EQ(fi.onRead(3, 4096, 4096, 0), Fault::None); // other file
    EXPECT_EQ(fi.onWrite(2, 4096, 4096, 0), Fault::None); // reads only
    fi.clearPersistent();
    EXPECT_EQ(fi.onRead(2, 4096, 4096, 0), Fault::None);
}

TEST(HostIoFault, TransientReadRetriesUntilSuccess)
{
    FiFixture fx;
    FileId f = fx.bs.create("f", 8192);
    for (int i = 0; i < 8192; ++i)
        fx.bs.data(f, 0, 8192)[i] = static_cast<uint8_t>(i * 7);
    HostIoEngine io(fx.dev, fx.bs);
    FaultInjector::Config cfg;
    cfg.seed = 3;
    cfg.transientReadRate = 0.5;
    FaultInjector fi(cfg);
    io.setFaultInjector(&fi);
    HostIoEngine::RetryPolicy rp;
    rp.maxAttempts = 20; // 0.5^20: exhaustion is effectively impossible
    io.setRetryPolicy(rp);

    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        // 16 independent reads at distinct offsets: at a 50% rate the
        // chance that the (deterministic) injector spares all of them
        // is 2^-16, so at least one retry is effectively guaranteed.
        for (int r = 0; r < 16; ++r) {
            sim::Addr dst = fx.buf + r * 512;
            EXPECT_EQ(io.readToGpu(w, f, r * 512, 512, dst),
                      IoStatus::Ok);
            for (int i = 0; i < 512; ++i)
                EXPECT_EQ(w.mem().load<uint8_t>(dst + i),
                          static_cast<uint8_t>((r * 512 + i) * 7));
        }
    });
    EXPECT_GE(fx.dev.stats().counter("hostio.retries"), 1u);
    EXPECT_GE(fx.dev.stats().counter("hostio.injected_faults"), 1u);
    EXPECT_EQ(fx.dev.stats().counter("hostio.failures"), 0u);
}

TEST(HostIoFault, RetriesBackOffInSimulatedTime)
{
    auto run = [](double rate) {
        FiFixture fx;
        FileId f = fx.bs.create("f", 16 * 4096);
        HostIoEngine io(fx.dev, fx.bs);
        FaultInjector::Config cfg;
        cfg.seed = 3;
        cfg.transientReadRate = rate;
        FaultInjector fi(cfg);
        io.setFaultInjector(&fi);
        HostIoEngine::RetryPolicy rp;
        rp.maxAttempts = 30;
        io.setRetryPolicy(rp);
        return fx.dev.launch(1, 1, [&](sim::Warp& w) {
            for (int p = 0; p < 16; ++p)
                EXPECT_EQ(io.readToGpu(w, f, p * 4096, 4096,
                                       fx.buf + p * 4096),
                          IoStatus::Ok);
        });
    };
    // Each retry costs at least one backoff period, so the faulty run
    // must take strictly longer than the clean one.
    EXPECT_GT(run(0.5), run(0.0));
}

TEST(HostIoFault, PersistentReadFailsTerminally)
{
    for (bool batching : {true, false}) {
        FiFixture fx;
        FileId f = fx.bs.create("f", 8192);
        HostIoEngine io(fx.dev, fx.bs, batching);
        FaultInjector fi;
        fi.failReads(f, 0, 4096);
        io.setFaultInjector(&fi);

        IoStatus st = IoStatus::Ok;
        fx.dev.launch(1, 1, [&](sim::Warp& w) {
            st = io.readToGpu(w, f, 0, 4096, fx.buf);
        });
        EXPECT_EQ(st, IoStatus::IoError) << "batching=" << batching;
        EXPECT_GE(fx.dev.stats().counter("hostio.failures"), 1u);
    }
}

TEST(HostIoFault, PoisonedRequestDoesNotWedgeItsBatch)
{
    FiFixture fx;
    FileId f = fx.bs.create("f", 16 * 4096);
    auto* p = fx.bs.data(f, 0, 16 * 4096);
    for (int i = 0; i < 16 * 4096; ++i)
        p[i] = static_cast<uint8_t>(i);
    HostIoEngine io(fx.dev, fx.bs, /*batching=*/true);
    FaultInjector fi;
    fi.failReads(f, 5 * 4096, 4096); // poison page 5 only
    io.setFaultInjector(&fi);

    IoStatus got[16];
    sim::Addr dst = fx.buf;
    // 16 warps read one page each; they aggregate into shared batches.
    fx.dev.launch(1, 16, [&](sim::Warp& w) {
        int i = w.warpInBlock();
        got[i] = io.readToGpu(w, f, i * 4096, 4096, dst + i * 4096);
    });
    for (int i = 0; i < 16; ++i) {
        if (i == 5) {
            EXPECT_EQ(got[i], IoStatus::IoError);
            continue;
        }
        EXPECT_EQ(got[i], IoStatus::Ok) << "page " << i;
        for (int b = 0; b < 4096; b += 997)
            EXPECT_EQ(fx.dev.mem().load<uint8_t>(dst + i * 4096 + b),
                      static_cast<uint8_t>(i * 4096 + b));
    }
}

TEST(HostIoFault, TransientWriteRetriesAndPersists)
{
    FiFixture fx;
    FileId f = fx.bs.create("f", 4096);
    HostIoEngine io(fx.dev, fx.bs);
    FaultInjector::Config cfg;
    cfg.seed = 11;
    cfg.transientWriteRate = 0.5;
    FaultInjector fi(cfg);
    io.setFaultInjector(&fi);
    HostIoEngine::RetryPolicy rp;
    rp.maxAttempts = 20;
    io.setRetryPolicy(rp);

    sim::Addr src = fx.buf;
    for (int i = 0; i < 4096; ++i)
        fx.dev.mem().store<uint8_t>(src + i, static_cast<uint8_t>(i * 5));
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        EXPECT_EQ(io.writeFromGpu(w, f, 0, 4096, src), IoStatus::Ok);
    });
    for (int i = 0; i < 4096; ++i)
        EXPECT_EQ(fx.bs.data(f, 0, 4096)[i], static_cast<uint8_t>(i * 5));
    EXPECT_GE(fx.dev.stats().counter("hostio.retries"), 1u);
}

TEST(HostIoFault, PersistentWriteFailsTerminally)
{
    FiFixture fx;
    FileId f = fx.bs.create("f", 4096);
    HostIoEngine io(fx.dev, fx.bs);
    FaultInjector fi;
    fi.failWrites(f, 0, 4096);
    io.setFaultInjector(&fi);
    IoStatus st = IoStatus::Ok;
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        st = io.writeFromGpu(w, f, 0, 4096, fx.buf);
    });
    EXPECT_EQ(st, IoStatus::IoError);
    EXPECT_GE(fx.dev.stats().counter("hostio.failures"), 1u);
}

TEST(HostIoFault, DelayedCompletionStretchesTheTransfer)
{
    auto run = [](double delay_cycles) {
        FiFixture fx;
        FileId f = fx.bs.create("f", 4096);
        HostIoEngine io(fx.dev, fx.bs);
        FaultInjector::Config cfg;
        cfg.delayRate = 1.0;
        cfg.delayCycles = delay_cycles;
        FaultInjector fi(cfg);
        io.setFaultInjector(&fi);
        return fx.dev.launch(1, 1, [&](sim::Warp& w) {
            EXPECT_EQ(io.readToGpu(w, f, 0, 4096, fx.buf),
                      IoStatus::Ok);
        });
    };
    sim::Cycles slow = run(50000.0);
    sim::Cycles fast = run(0.0);
    EXPECT_GE(slow, fast + 50000.0);
}

TEST(HostIoFault, CheckedEofIsUniformAcrossVariants)
{
    FiFixture fx;
    FileId f = fx.bs.create("f", 6000); // not page aligned
    HostIoEngine io(fx.dev, fx.bs);
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        // Fully in range, spanning the partial last page.
        EXPECT_EQ(io.readToGpu(w, f, 4096, 6000 - 4096, fx.buf),
                  IoStatus::Ok);
        // Past EOF: every variant reports instead of asserting.
        EXPECT_EQ(io.readToGpu(w, f, 6000, 1, fx.buf), IoStatus::Eof);
        EXPECT_EQ(io.readToGpu(w, f, 4096, 4096, fx.buf),
                  IoStatus::Eof);
        EXPECT_EQ(io.writeFromGpu(w, f, 6000, 1, fx.buf),
                  IoStatus::Eof);
        EXPECT_EQ(io.readToGpu(w, -1, 0, 16, fx.buf),
                  IoStatus::BadFile);
        EXPECT_EQ(io.writeFromGpu(w, 99, 0, 16, fx.buf),
                  IoStatus::BadFile);
        bool fired = false;
        EXPECT_EQ(io.readToGpuAsync(w, f, 6000, 16, fx.buf,
                                    [&](IoStatus) { fired = true; }),
                  IoStatus::Eof);
        EXPECT_FALSE(fired); // validation errors never call back
    });
    // Every failed validation counted, and none consumed a transfer.
    EXPECT_EQ(fx.dev.stats().counter("hostio.failures"), 6u);
}

TEST(HostIoFault, AsyncReadRetriesEngineSide)
{
    FiFixture fx;
    FileId f = fx.bs.create("f", 4096);
    for (int i = 0; i < 4096; ++i)
        fx.bs.data(f, 0, 4096)[i] = static_cast<uint8_t>(i * 3);
    HostIoEngine io(fx.dev, fx.bs);
    FaultInjector::Config cfg;
    cfg.seed = 5;
    cfg.transientReadRate = 0.5;
    FaultInjector fi(cfg);
    io.setFaultInjector(&fi);
    HostIoEngine::RetryPolicy rp;
    rp.maxAttempts = 20;
    io.setRetryPolicy(rp);

    int calls = 0;
    IoStatus final_st = IoStatus::IoError;
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        EXPECT_EQ(io.readToGpuAsync(w, f, 0, 4096, fx.buf,
                                    [&](IoStatus st) {
                                        ++calls;
                                        final_st = st;
                                    }),
                  IoStatus::Ok);
    });
    // launch() drains the event queue, so the retries have resolved.
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(final_st, IoStatus::Ok);
    EXPECT_GE(fx.dev.stats().counter("hostio.retries"), 1u);
    for (int i = 0; i < 4096; ++i)
        EXPECT_EQ(fx.dev.mem().load<uint8_t>(fx.buf + i),
                  static_cast<uint8_t>(i * 3));
}

TEST(HostIoFault, AsyncPersistentFailureReportsOnce)
{
    FiFixture fx;
    FileId f = fx.bs.create("f", 4096);
    HostIoEngine io(fx.dev, fx.bs);
    FaultInjector fi;
    fi.failReads(f, 0, 4096);
    io.setFaultInjector(&fi);
    int calls = 0;
    IoStatus final_st = IoStatus::Ok;
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        EXPECT_EQ(io.readToGpuAsync(w, f, 0, 4096, fx.buf,
                                    [&](IoStatus st) {
                                        ++calls;
                                        final_st = st;
                                    }),
                  IoStatus::Ok);
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(final_st, IoStatus::IoError);
    EXPECT_GE(fx.dev.stats().counter("hostio.failures"), 1u);
}

TEST(HostIoFault, TransferParityBetweenBatchedAndUnbatched)
{
    // The same serial workload must count the same number of PCIe
    // transfers on both paths: one per request, counted at completion.
    auto transfers = [](bool batching) {
        FiFixture fx;
        FileId f = fx.bs.create("f", 8 * 4096);
        HostIoEngine io(fx.dev, fx.bs, batching);
        fx.dev.launch(1, 1, [&](sim::Warp& w) {
            for (int i = 0; i < 8; ++i)
                EXPECT_EQ(io.readToGpu(w, f, i * 4096u, 4096,
                                       fx.buf + i * 4096u),
                          IoStatus::Ok);
        });
        return fx.dev.stats().counter("hostio.transfers");
    };
    EXPECT_EQ(transfers(true), transfers(false));
}

} // namespace
} // namespace ap::hostio
