#include <gtest/gtest.h>

#include "hostio/host_io_engine.hh"

namespace ap::hostio {
namespace {

struct IoFixture
{
    sim::Device dev{sim::CostModel{}, 1 << 22};
    BackingStore bs;
};

TEST(HostIo, ReadDeliversBytes)
{
    IoFixture fx;
    FileId f = fx.bs.create("f", 8192);
    for (int i = 0; i < 8192; ++i)
        fx.bs.data(f, 0, 8192)[i] = static_cast<uint8_t>(i * 13);
    HostIoEngine io(fx.dev, fx.bs);
    sim::Addr dst = fx.dev.mem().alloc(8192);
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        EXPECT_EQ(io.readToGpu(w, f, 0, 8192, dst), IoStatus::Ok);
    });
    for (int i = 0; i < 8192; ++i)
        EXPECT_EQ(fx.dev.mem().load<uint8_t>(dst + i),
                  static_cast<uint8_t>(i * 13));
}

TEST(HostIo, ReadBlocksForTransferTime)
{
    IoFixture fx;
    FileId f = fx.bs.create("f", 1 << 20);
    HostIoEngine io(fx.dev, fx.bs);
    sim::Addr dst = fx.dev.mem().alloc(1 << 20);
    sim::Cycles dt = 0;
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        sim::Cycles t0 = w.now();
        EXPECT_EQ(io.readToGpu(w, f, 0, 1 << 20, dst), IoStatus::Ok);
        dt = w.now() - t0;
    });
    const sim::CostModel& cm = fx.dev.costModel();
    // At least the PCIe serialization time of 1 MB.
    EXPECT_GE(dt, (1 << 20) / cm.pcieBytesPerCycle);
}

TEST(HostIo, BatchingAggregatesConcurrentReads)
{
    IoFixture fx;
    FileId f = fx.bs.create("f", 64 * 4096);
    HostIoEngine io(fx.dev, fx.bs);
    sim::Addr dst = fx.dev.mem().alloc(64 * 4096);
    // 16 warps each read one 4 KB page concurrently.
    fx.dev.launch(1, 16, [&](sim::Warp& w) {
        int i = w.warpInBlock();
        EXPECT_EQ(io.readToGpu(w, f, i * 4096, 4096, dst + i * 4096),
                  IoStatus::Ok);
    });
    // All 16 requests should share very few PCIe transfers.
    EXPECT_LE(fx.dev.stats().counter("hostio.transfers"), 2u);
    EXPECT_EQ(fx.dev.stats().counter("hostio.read_requests"), 16u);
}

TEST(HostIo, NoBatchingIssuesOneTransferPerRead)
{
    IoFixture fx;
    FileId f = fx.bs.create("f", 64 * 4096);
    HostIoEngine io(fx.dev, fx.bs, /*batching=*/false);
    sim::Addr dst = fx.dev.mem().alloc(64 * 4096);
    fx.dev.launch(1, 16, [&](sim::Warp& w) {
        int i = w.warpInBlock();
        EXPECT_EQ(io.readToGpu(w, f, i * 4096, 4096, dst + i * 4096),
                  IoStatus::Ok);
    });
    EXPECT_EQ(fx.dev.stats().counter("hostio.transfers"), 16u);
}

TEST(HostIo, BatchingIsFasterForSmallPages)
{
    auto run = [](bool batching) {
        IoFixture fx;
        FileId f = fx.bs.create("f", 256 * 4096);
        HostIoEngine io(fx.dev, fx.bs, batching);
        sim::Addr dst = fx.dev.mem().alloc(256 * 4096);
        return fx.dev.launch(2, 32, [&](sim::Warp& w) {
            for (int k = 0; k < 4; ++k) {
                int i = w.globalWarpId() * 4 + k;
                EXPECT_EQ(io.readToGpu(w, f, i * 4096, 4096, dst + i * 4096),
                  IoStatus::Ok);
            }
        });
    };
    sim::Cycles batched = run(true);
    sim::Cycles unbatched = run(false);
    EXPECT_LT(batched, unbatched);
}

TEST(HostIo, WriteFromGpuPersists)
{
    IoFixture fx;
    FileId f = fx.bs.create("f", 4096);
    HostIoEngine io(fx.dev, fx.bs);
    sim::Addr src = fx.dev.mem().alloc(4096);
    for (int i = 0; i < 4096; ++i)
        fx.dev.mem().store<uint8_t>(src + i, static_cast<uint8_t>(i));
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        EXPECT_EQ(io.writeFromGpu(w, f, 0, 4096, src), IoStatus::Ok);
    });
    for (int i = 0; i < 4096; ++i)
        EXPECT_EQ(fx.bs.data(f, 0, 4096)[i], static_cast<uint8_t>(i));
}

TEST(HostIo, RpcRunsOnHostAndReturnsValue)
{
    IoFixture fx;
    HostIoEngine io(fx.dev, fx.bs);
    int64_t got = 0;
    fx.dev.launch(1, 1, [&](sim::Warp& w) {
        got = io.rpc(w, [] { return int64_t(4242); });
    });
    EXPECT_EQ(got, 4242);
}

TEST(HostIo, LargeReadSplitsIntoMaxBatchTransfers)
{
    IoFixture fx;
    FileId f = fx.bs.create("f", 3 << 20);
    HostIoEngine io(fx.dev, fx.bs);
    sim::Addr dst = fx.dev.mem().alloc(3 << 20);
    // 3 MB of 4 KB requests with a 1 MB batch limit => >= 3 transfers.
    fx.dev.launch(1, 24, [&](sim::Warp& w) {
        for (int k = 0; k < 32; ++k) {
            uint64_t i = w.warpInBlock() * 32u + k;
            EXPECT_EQ(io.readToGpu(w, f, i * 4096, 4096, dst + i * 4096),
                  IoStatus::Ok);
        }
    });
    EXPECT_GE(fx.dev.stats().counter("hostio.transfers"), 3u);
}

} // namespace
} // namespace ap::hostio
