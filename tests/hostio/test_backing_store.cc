#include <cstring>

#include <gtest/gtest.h>

#include "hostio/backing_store.hh"

namespace ap::hostio {
namespace {

TEST(BackingStore, CreateAndOpen)
{
    BackingStore bs;
    FileId f = bs.create("data.bin", 1024);
    EXPECT_GE(f, 0);
    EXPECT_EQ(bs.open("data.bin"), f);
    EXPECT_EQ(bs.open("missing"), -1);
    EXPECT_EQ(bs.size(f), 1024u);
    EXPECT_EQ(bs.name(f), "data.bin");
}

TEST(BackingStore, CreateReplacesExisting)
{
    BackingStore bs;
    FileId f = bs.create("f", 16);
    bs.data(f, 0, 16)[0] = 0x5a;
    FileId g = bs.create("f", 32);
    EXPECT_EQ(f, g);
    EXPECT_EQ(bs.size(g), 32u);
    EXPECT_EQ(bs.data(g, 0, 32)[0], 0); // contents reset
}

TEST(BackingStore, PreadPwriteRoundTrip)
{
    BackingStore bs;
    FileId f = bs.create("f", 4096);
    uint8_t out[128], in[128];
    for (int i = 0; i < 128; ++i)
        out[i] = static_cast<uint8_t>(i * 3);
    bs.pwrite(f, out, 128, 1000);
    bs.pread(f, in, 128, 1000);
    EXPECT_EQ(0, std::memcmp(out, in, 128));
}

TEST(BackingStore, FilesAreZeroInitialized)
{
    BackingStore bs;
    FileId f = bs.create("f", 256);
    uint8_t buf[256];
    bs.pread(f, buf, 256, 0);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(buf[i], 0);
}

TEST(BackingStore, TruncateGrowsOnly)
{
    BackingStore bs;
    FileId f = bs.create("f", 100);
    bs.truncate(f, 200);
    EXPECT_EQ(bs.size(f), 200u);
    bs.truncate(f, 50);
    EXPECT_EQ(bs.size(f), 200u);
}

TEST(BackingStore, MultipleFilesIndependent)
{
    BackingStore bs;
    FileId a = bs.create("a", 64);
    FileId b = bs.create("b", 64);
    bs.data(a, 0, 64)[0] = 1;
    bs.data(b, 0, 64)[0] = 2;
    EXPECT_EQ(bs.data(a, 0, 64)[0], 1);
    EXPECT_EQ(bs.data(b, 0, 64)[0], 2);
    EXPECT_EQ(bs.fileCount(), 2u);
}

TEST(BackingStoreDeath, PreadPastEofPanics)
{
    BackingStore bs;
    FileId f = bs.create("f", 64);
    uint8_t buf[64];
    EXPECT_DEATH(bs.pread(f, buf, 64, 1), "past EOF");
}

TEST(BackingStoreDeath, BadFileIdPanics)
{
    BackingStore bs;
    EXPECT_DEATH(bs.size(0), "bad file id");
    EXPECT_DEATH(bs.size(-1), "bad file id");
}

} // namespace
} // namespace ap::hostio
