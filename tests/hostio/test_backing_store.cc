#include <cstring>

#include <gtest/gtest.h>

#include "hostio/backing_store.hh"

namespace ap::hostio {
namespace {

TEST(BackingStore, CreateAndOpen)
{
    BackingStore bs;
    FileId f = bs.create("data.bin", 1024);
    EXPECT_GE(f, 0);
    EXPECT_EQ(bs.open("data.bin"), f);
    EXPECT_EQ(bs.open("missing"), -1);
    EXPECT_EQ(bs.size(f), 1024u);
    EXPECT_EQ(bs.name(f), "data.bin");
}

TEST(BackingStore, CreateReplacesExisting)
{
    BackingStore bs;
    FileId f = bs.create("f", 16);
    bs.data(f, 0, 16)[0] = 0x5a;
    FileId g = bs.create("f", 32);
    EXPECT_EQ(f, g);
    EXPECT_EQ(bs.size(g), 32u);
    EXPECT_EQ(bs.data(g, 0, 32)[0], 0); // contents reset
}

TEST(BackingStore, PreadPwriteRoundTrip)
{
    BackingStore bs;
    FileId f = bs.create("f", 4096);
    uint8_t out[128], in[128];
    for (int i = 0; i < 128; ++i)
        out[i] = static_cast<uint8_t>(i * 3);
    bs.pwrite(f, out, 128, 1000);
    bs.pread(f, in, 128, 1000);
    EXPECT_EQ(0, std::memcmp(out, in, 128));
}

TEST(BackingStore, FilesAreZeroInitialized)
{
    BackingStore bs;
    FileId f = bs.create("f", 256);
    uint8_t buf[256];
    bs.pread(f, buf, 256, 0);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(buf[i], 0);
}

TEST(BackingStore, TruncateGrowsOnly)
{
    BackingStore bs;
    FileId f = bs.create("f", 100);
    bs.truncate(f, 200);
    EXPECT_EQ(bs.size(f), 200u);
    bs.truncate(f, 50);
    EXPECT_EQ(bs.size(f), 200u);
}

TEST(BackingStore, MultipleFilesIndependent)
{
    BackingStore bs;
    FileId a = bs.create("a", 64);
    FileId b = bs.create("b", 64);
    bs.data(a, 0, 64)[0] = 1;
    bs.data(b, 0, 64)[0] = 2;
    EXPECT_EQ(bs.data(a, 0, 64)[0], 1);
    EXPECT_EQ(bs.data(b, 0, 64)[0], 2);
    EXPECT_EQ(bs.fileCount(), 2u);
}

TEST(BackingStoreDeath, PreadPastEofPanics)
{
    BackingStore bs;
    FileId f = bs.create("f", 64);
    uint8_t buf[64];
    EXPECT_DEATH(bs.pread(f, buf, 64, 1), "past EOF");
}

TEST(BackingStoreDeath, BadFileIdPanics)
{
    BackingStore bs;
    EXPECT_DEATH(bs.size(0), "bad file id");
    EXPECT_DEATH(bs.size(-1), "bad file id");
}

TEST(BackingStore, ValidRecognizesLiveIds)
{
    BackingStore bs;
    EXPECT_FALSE(bs.valid(0));
    FileId f = bs.create("f", 64);
    EXPECT_TRUE(bs.valid(f));
    EXPECT_FALSE(bs.valid(f + 1));
    EXPECT_FALSE(bs.valid(-1));
}

TEST(BackingStore, CheckRangeClassifiesErrors)
{
    BackingStore bs;
    FileId f = bs.create("f", 100);
    EXPECT_EQ(bs.checkRange(f, 0, 100), IoStatus::Ok);
    EXPECT_EQ(bs.checkRange(f, 100, 0), IoStatus::Ok); // empty at EOF
    EXPECT_EQ(bs.checkRange(f, 0, 101), IoStatus::Eof);
    EXPECT_EQ(bs.checkRange(f, 101, 0), IoStatus::Eof);
    EXPECT_EQ(bs.checkRange(f, 50, 51), IoStatus::Eof);
    EXPECT_EQ(bs.checkRange(-1, 0, 1), IoStatus::BadFile);
    EXPECT_EQ(bs.checkRange(f + 1, 0, 1), IoStatus::BadFile);
    // off + len overflowing 64 bits must classify as Eof, not wrap
    // around and pass.
    EXPECT_EQ(bs.checkRange(f, ~0ull - 4, 8), IoStatus::Eof);
}

TEST(BackingStore, CheckedIoReturnsStatusInsteadOfPanicking)
{
    BackingStore bs;
    FileId f = bs.create("f", 64);
    uint8_t buf[64] = {};
    EXPECT_EQ(bs.preadChecked(f, buf, 64, 0), IoStatus::Ok);
    EXPECT_EQ(bs.preadChecked(f, buf, 64, 1), IoStatus::Eof);
    EXPECT_EQ(bs.preadChecked(-1, buf, 1, 0), IoStatus::BadFile);
    buf[0] = 0xab;
    EXPECT_EQ(bs.pwriteChecked(f, buf, 1, 63), IoStatus::Ok);
    EXPECT_EQ(bs.pwriteChecked(f, buf, 2, 63), IoStatus::Eof);
    EXPECT_EQ(bs.pwriteChecked(99, buf, 1, 0), IoStatus::BadFile);
    uint8_t back = 0;
    EXPECT_EQ(bs.preadChecked(f, &back, 1, 63), IoStatus::Ok);
    EXPECT_EQ(back, 0xab);
}

TEST(BackingStoreDeath, DataOfBadFilePanics)
{
    BackingStore bs;
    FileId f = bs.create("f", 64);
    EXPECT_DEATH(bs.data(f + 7, 0, 1), "bad file id");
    EXPECT_DEATH(bs.data(f, 60, 8), "past EOF");
}

} // namespace
} // namespace ap::hostio
