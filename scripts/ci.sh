#!/usr/bin/env bash
# Single CI entry point for the tier-1 gate: build, test, lint, and
# the simcheck-armed re-run as one command with grouped step output.
# The first failing stage stops the run and names itself, so a CI log
# ends with exactly one culprit. check_all.sh rows [1-3] delegate
# here; the sanitizer row stays in scripts/check.sh.
#
# Steps:
#   build     configure + compile the plain tree
#   test      full ctest, then one --no-tests=error re-run per suite
#             label (fault, prefetch, obs, lint, serving, tenant,
#             simcheck) so a label silently going empty fails
#   lint      aplint over the whole tree against the committed (empty)
#             baseline — any unwaived finding fails
#   perf      scripts/perf_diff: the gated benches re-run with --json
#             and compared against the committed BENCH_*.json
#             baselines (per-metric tolerance bands; any regression
#             fails; rebaseline with scripts/perf_diff --rebaseline)
#   simcheck  tier-1 rebuilt and re-run with the race/lock-order/
#             invariant/page-lifecycle analyses armed, then a one-line
#             summary of what the gate covered
#
# Usage: scripts/ci.sh [plain-build-dir] [simcheck-build-dir]
#        (defaults: build-plain, build-simcheck)
set -euo pipefail

cd "$(dirname "$0")/.."
PLAIN="${1:-build-plain}"
ARMED="${2:-build-simcheck}"
JOBS="$(nproc 2>/dev/null || echo 4)"
LABELS=(fault prefetch obs lint serving tenant simcheck)

STEP=""
step() {
    [ -n "${STEP}" ] && echo "::endgroup::"
    STEP="$1"
    echo
    echo "::group::ci: ${STEP}"
    echo "=== ci.sh: ${STEP} ==="
}
trap '[ $? -ne 0 ] && echo "=== ci.sh: FAILED in step \"${STEP}\" ==="' EXIT

step "build (${PLAIN})"
cmake -B "${PLAIN}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${PLAIN}" -j "${JOBS}"

step "test (${PLAIN})"
ctest --test-dir "${PLAIN}" --output-on-failure -j "${JOBS}"
for label in "${LABELS[@]}"; do
    ctest --test-dir "${PLAIN}" -L "${label}" --no-tests=error \
        -j "${JOBS}" --output-on-failure
done

step "lint (baseline: tools/aplint/baseline.json)"
scripts/lint.sh "${PLAIN}"

step "perf (baselines: BENCH_*.json)"
scripts/perf_diff "${PLAIN}"

step "simcheck (${ARMED})"
cmake -B "${ARMED}" -S . -DAP_SIMCHECK=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${ARMED}" -j "${JOBS}"
ctest --test-dir "${ARMED}" --output-on-failure -j "${JOBS}"
TOTAL="$(ctest --test-dir "${ARMED}" -N | tail -1)"
echo "=== ci.sh: simcheck summary: armed re-run green (${TOTAL}),"
echo "    labels guarded: ${LABELS[*]} ==="

echo "::endgroup::"
STEP=""
echo "=== ci.sh: all steps green ==="
