#!/usr/bin/env bash
# Run the tier-1 test suite under AddressSanitizer + UBSan, and run
# clang-tidy over the sources when it is installed. This is the
# "native tooling" half of the analysis matrix; scripts/check_all.sh
# runs the full matrix including the simcheck build.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> configuring ${BUILD} with -DAP_SANITIZE=address;undefined"
cmake -B "${BUILD}" -S . -DAP_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "${JOBS}"

# The simulator's warp fibers are ucontext-based; ASan's fake-stack
# bookkeeping does not follow swapcontext, so disable the one feature
# that depends on it and keep everything else.
export ASAN_OPTIONS="detect_stack_use_after_return=0:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"

echo "==> tier-1 under ASan+UBSan"
ctest --test-dir "${BUILD}" --output-on-failure -j "${JOBS}"
# Failure-semantics slice: must exist and pass under the sanitizers
# too (the error paths allocate and free across fiber switches).
ctest --test-dir "${BUILD}" -L fault --no-tests=error -j "${JOBS}" \
    --output-on-failure
# Readahead slice: the speculative-fill lifecycle crosses fiber
# switches and the DMA queue; it must exist and stay clean here too.
ctest --test-dir "${BUILD}" -L prefetch --no-tests=error -j "${JOBS}" \
    --output-on-failure
# Observability slice: fault-path recorder, histograms, stats export,
# and the apstat trace reader (docs/OBSERVABILITY.md).
ctest --test-dir "${BUILD}" -L obs --no-tests=error -j "${JOBS}" \
    --output-on-failure

if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy (src + tools)"
    # Compile-command database from the sanitizer build keeps flags
    # consistent with what actually ships.
    cmake -B "${BUILD}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src/util src/core src/sim src/gpufs src/hostio tools/aplint \
        tools/apstat \
        -name '*.cc' -print0 |
        xargs -0 -n 1 -P "${JOBS}" clang-tidy -p "${BUILD}" --quiet
else
    echo "==> clang-tidy not installed; skipping the static pass"
fi

echo "==> check.sh: all green"
