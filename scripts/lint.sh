#!/usr/bin/env bash
# Run aplint, the AP_* protocol analyzer, over the whole tree (see
# docs/ANALYSIS.md, "Static matrix"). Builds the tool first if needed.
# Exits nonzero on any unwaived finding, so CI can gate on it.
#
# Findings recorded in tools/aplint/baseline.json are tolerated (and
# reported as baselined); anything new fails. The committed baseline
# is empty — it exists so a rule upgrade can land with its legacy
# findings parked instead of blocking, then be burned down. Regenerate
# with `aplint --emit-baseline`.
#
# Usage: scripts/lint.sh [build-dir] [extra aplint args...]
#        (default build dir: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
[ $# -ge 1 ] && shift
JOBS="$(nproc 2>/dev/null || echo 4)"

if [ ! -f "${BUILD}/CMakeCache.txt" ]; then
    cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD}" --target aplint -j "${JOBS}"

exec "${BUILD}/tools/aplint/aplint" --root . \
    --exclude tests/tools/aplint/fixtures \
    --baseline tools/aplint/baseline.json "$@"
