#!/usr/bin/env bash
# The full analysis matrix (see docs/ANALYSIS.md):
#
#   1. aplint      - the AP_* protocol contracts, source-level
#                    (leader-only, lockstep, yield, lock-order, linked
#                    escape, assert purity, plus the interprocedural
#                    passes: contract propagation, must-check status,
#                    linked-escape v2, unused waivers); any unwaived
#                    finding outside tools/aplint/baseline.json fails
#   2. plain       - the tier-1 suite as shipped
#   3. simcheck    - tier-1 with the race/lock-order/invariant
#                    analyses armed; any report fails the run
#   4. sanitizers  - tier-1 under ASan+UBSan (via scripts/check.sh),
#                    plus clang-tidy when installed
#
# The failure-semantics tests (ctest label `fault`: injector, retry/
# backoff, fill-error propagation), the readahead tests (ctest label
# `prefetch`: stream detection, window adaptation, throttle,
# speculative-page lifecycle), and the observability tests (ctest
# label `obs`: fault-path recorder, latency histograms, stats export,
# apstat), and the analyzer's own suite (ctest label `lint`: the two
# self-host scans plus lexer/parser/rule/call-graph/dataflow units)
# run inside every tier-1 row; the explicit `--no-tests=error`
# re-runs after each row guard against a label silently going empty.
#
# Wired to `cmake --build <dir> --target check-all`. Each row builds
# in its own scratch tree so the matrix never dirties a dev build.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/4] aplint protocol contracts ==="
scripts/lint.sh build-plain

echo "=== [2/4] plain tier-1 ==="
cmake -B build-plain -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-plain -j "${JOBS}"
ctest --test-dir build-plain --output-on-failure -j "${JOBS}"
ctest --test-dir build-plain -L fault --no-tests=error -j "${JOBS}" \
    --output-on-failure
ctest --test-dir build-plain -L prefetch --no-tests=error -j "${JOBS}" \
    --output-on-failure
ctest --test-dir build-plain -L obs --no-tests=error -j "${JOBS}" \
    --output-on-failure
ctest --test-dir build-plain -L lint --no-tests=error -j "${JOBS}" \
    --output-on-failure

echo "=== [3/4] tier-1 with simcheck armed ==="
cmake -B build-simcheck -S . -DAP_SIMCHECK=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-simcheck -j "${JOBS}"
ctest --test-dir build-simcheck --output-on-failure -j "${JOBS}"
ctest --test-dir build-simcheck -L fault --no-tests=error -j "${JOBS}" \
    --output-on-failure
ctest --test-dir build-simcheck -L prefetch --no-tests=error \
    -j "${JOBS}" --output-on-failure
ctest --test-dir build-simcheck -L obs --no-tests=error -j "${JOBS}" \
    --output-on-failure
ctest --test-dir build-simcheck -L lint --no-tests=error -j "${JOBS}" \
    --output-on-failure

echo "=== [4/4] sanitizers ==="
scripts/check.sh build-asan

echo "=== check_all.sh: matrix green ==="
