#!/usr/bin/env bash
# The full analysis matrix (see docs/ANALYSIS.md):
#
#   1. aplint      - the AP_* protocol contracts, source-level
#                    (leader-only, lockstep, yield, lock-order, linked
#                    escape, assert purity, plus the interprocedural
#                    passes: contract propagation, must-check status,
#                    linked-escape v2, unused waivers); any unwaived
#                    finding outside tools/aplint/baseline.json fails
#   2. plain       - the tier-1 suite as shipped
#   3. simcheck    - tier-1 with the race/lock-order/invariant
#                    analyses armed; any report fails the run
#   4. sanitizers  - tier-1 under ASan+UBSan (via scripts/check.sh),
#                    plus clang-tidy when installed
#
# Rows 1-3 also include the perf gate (scripts/perf_diff): the serving
# harness and the gated bench binaries re-run with --json and diffed
# against the committed BENCH_*.json baselines via `apstat diff`.
#
# The failure-semantics tests (ctest label `fault`: injector, retry/
# backoff, fill-error propagation), the readahead tests (ctest label
# `prefetch`: stream detection, window adaptation, throttle,
# speculative-page lifecycle), and the observability tests (ctest
# label `obs`: fault-path recorder, latency histograms, stats export,
# apstat incl. its diff mode), the serving-harness tests (ctest label
# `serving`: arrivals, admission control, validation, JSON byte
# determinism), the multi-tenant QoS tests (ctest label `tenant`:
# ASID registry, DRR host-IO split, eviction isolation + reclaim
# reserve, TLB shootdown, tenant auditor), and the analyzer's own
# suite (ctest label `lint`: the
# two self-host scans plus lexer/parser/rule/call-graph/dataflow
# units) run inside every tier-1 row; the explicit `--no-tests=error`
# re-runs after each row guard against a label silently going empty.
#
# Rows 1-3 (build, test, lint, simcheck) are the tier-1 CI gate and
# live in scripts/ci.sh, which this script delegates to — ci.sh is
# what a CI job runs standalone; check_all.sh adds the sanitizer row
# on top. Wired to `cmake --build <dir> --target check-all`. Each row
# builds in its own scratch tree so the matrix never dirties a dev
# build.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== [1-3/4] tier-1 CI gate (build, test, lint, simcheck) ==="
scripts/ci.sh build-plain build-simcheck

echo "=== [4/4] sanitizers ==="
scripts/check.sh build-asan

echo "=== check_all.sh: matrix green ==="
