/**
 * @file
 * aplint CLI. Exit status is 0 only when the tree has zero unwaived
 * (and non-baselined) findings, so CI can gate on it directly.
 *
 *   aplint [--root DIR] [--json | --sarif] [--exclude SUBSTR]...
 *          [--baseline FILE] [--emit-baseline] [--strict-waivers]
 *          [--no-wpa] [--stats] [path...]
 */

#include "driver.hh"

#include <cstdio>
#include <cstring>
#include <string>

int
main(int argc, char** argv)
{
    ap::lint::Options opts;
    bool json = false;
    bool sarif = false;
    bool emitBaseline = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--sarif") {
            sarif = true;
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--root" && i + 1 < argc) {
            opts.root = argv[++i];
        } else if (arg == "--exclude" && i + 1 < argc) {
            opts.excludes.push_back(argv[++i]);
        } else if (arg == "--baseline" && i + 1 < argc) {
            opts.baselinePath = argv[++i];
        } else if (arg == "--emit-baseline") {
            emitBaseline = true;
        } else if (arg == "--strict-waivers") {
            opts.strictWaivers = true;
        } else if (arg == "--no-wpa") {
            opts.wpa = false;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: aplint [--root DIR] [--json | --sarif] "
                "[--exclude SUBSTR]... [--baseline FILE] "
                "[--emit-baseline] [--strict-waivers] [--no-wpa] "
                "[--stats] [path...]\n"
                "Lints the ActivePointers tree against the AP_* "
                "contract annotations.\n"
                "Default paths (relative to --root): src tests bench "
                "examples tools\n"
                "  --baseline FILE   tolerate findings listed in FILE; "
                "only new ones gate\n"
                "  --emit-baseline   print current unwaived findings "
                "in baseline format\n"
                "  --sarif           emit SARIF 2.1.0 instead of text "
                "(for code-scanning UIs)\n"
                "  --stats           append per-file timing and "
                "parse-cache counters\n"
                "  --strict-waivers  stale (unused) waivers become "
                "errors, not notes\n"
                "  --no-wpa          disable the whole-program passes "
                "(call graph,\n"
                "                    contract propagation, inferred "
                "yield invalidation,\n"
                "                    interprocedural ref summaries)\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "aplint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (!paths.empty())
        opts.paths = paths;

    ap::lint::Report report = ap::lint::analyze(opts);
    if (emitBaseline) {
        std::fputs(ap::lint::toBaseline(report).c_str(), stdout);
        return 0;
    }
    std::string out = sarif ? ap::lint::toSarif(report)
                     : json ? ap::lint::toJson(report)
                            : ap::lint::toText(report);
    std::fputs(out.c_str(), stdout);
    if (opts.stats && !sarif)
        std::fputs(ap::lint::toStats(report).c_str(), stdout);
    return report.unwaivedCount() == 0 ? 0 : 1;
}
