#include "parser.hh"

#include <set>

namespace ap::lint {

namespace {

const std::set<std::string> kAnnotations = {
    "AP_LOCKSTEP",  "AP_LEADER_ONLY", "AP_ELECTS_LEADER",
    "AP_REQUIRES_LINKED", "AP_ACQUIRES", "AP_NO_YIELD",
    "AP_YIELDS",    "AP_LOCK_LEVEL",  "AP_MUST_CHECK",
    "AP_RETURNS_LINKED", "AP_ACQUIRES_REF", "AP_RELEASES_REF",
    "AP_TRANSITIONS", "AP_BALANCED",
};

/** Keywords that look like calls (`if (...)`) but are not. */
const std::set<std::string> kNotCalls = {
    "if",     "for",    "while",   "switch",   "return", "do",
    "else",   "case",   "goto",    "sizeof",   "alignof", "decltype",
    "catch",  "throw",  "new",     "delete",   "static_assert",
    "constexpr", "noexcept", "alignas",
};

/** Qualifier identifiers legal between a parameter list and the body. */
const std::set<std::string> kTrailingQuals = {
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "constexpr", "try",
};

std::string
trim(const std::string& s)
{
    size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

std::string
unquote(const std::string& s)
{
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
        return s.substr(1, s.size() - 2);
    return s;
}

class Parser
{
  public:
    Parser(FileModel& out) : m(out), toks(out.lx.tokens) {}

    void run()
    {
        parseDecls("");
        parseDirectives();
    }

  private:
    FileModel& m;
    const std::vector<Token>& toks;
    size_t pos = 0;

    bool done() const { return pos >= toks.size(); }
    const Token& cur() const { return toks[pos]; }
    bool at(const char* s) const { return !done() && cur().text == s; }
    bool atIdent() const { return !done() && cur().kind == Tok::Ident; }

    /** Skip a balanced (...)/{...}/[...] group; pos is at the opener. */
    void skipBalanced(char open, char close)
    {
        int depth = 0;
        std::string o(1, open), c(1, close);
        while (!done()) {
            if (cur().text == o)
                ++depth;
            else if (cur().text == c && --depth == 0) {
                ++pos;
                return;
            }
            ++pos;
        }
    }

    /** Skip template argument angles; `>>` closes two levels. */
    void skipAngles()
    {
        int depth = 0;
        while (!done()) {
            const std::string& t = cur().text;
            if (t == "<")
                ++depth;
            else if (t == ">") {
                if (--depth == 0) {
                    ++pos;
                    return;
                }
            } else if (t == ">>") {
                depth -= 2;
                if (depth <= 0) {
                    ++pos;
                    return;
                }
            } else if (t == "(") {
                skipBalanced('(', ')');
                continue;
            } else if (t == ";" || t == "{") {
                return; // not really a template argument list; bail
            }
            ++pos;
        }
    }

    void skipToSemi()
    {
        while (!done()) {
            if (at("{"))
                skipBalanced('{', '}');
            else if (at("(")) {
                skipBalanced('(', ')');
            } else if (at(";")) {
                ++pos;
                return;
            } else {
                ++pos;
            }
        }
    }

    // ---- declarations -------------------------------------------------

    void parseDecls(const std::string& className)
    {
        while (!done()) {
            const std::string& t = cur().text;
            if (t == "}") {
                ++pos;
                return;
            }
            if (t == "namespace") {
                ++pos;
                while (atIdent() || at("::"))
                    ++pos;
                if (at("{")) {
                    ++pos;
                    parseDecls(className);
                } else {
                    skipToSemi(); // namespace alias
                }
                continue;
            }
            if (t == "class" || t == "struct" || t == "union") {
                parseRecord(className);
                continue;
            }
            if (t == "enum") {
                ++pos;
                while (!done() && !at("{") && !at(";"))
                    ++pos;
                if (at("{"))
                    skipBalanced('{', '}');
                skipToSemi();
                continue;
            }
            if (t == "template") {
                ++pos;
                if (at("<"))
                    skipAngles();
                continue;
            }
            if (t == "using" || t == "typedef" || t == "static_assert" ||
                t == "friend" || t == "extern") {
                // `extern "C" {` opens a plain scope we can recurse into.
                ++pos;
                if (t == "extern" && !done() && cur().kind == Tok::String) {
                    ++pos;
                    if (at("{")) {
                        ++pos;
                        parseDecls(className);
                        continue;
                    }
                }
                if (t == "extern")
                    continue; // plain storage-class; part of a decl
                skipToSemi();
                continue;
            }
            if (t == "public" || t == "private" || t == "protected") {
                ++pos;
                if (at(":"))
                    ++pos;
                continue;
            }
            if (t == ";") {
                ++pos;
                continue;
            }
            parseOneDecl(className);
        }
    }

    void parseRecord(const std::string& outer)
    {
        ++pos; // class/struct/union
        std::string name;
        while (!done()) {
            const std::string& t = cur().text;
            if (cur().kind == Tok::Ident && t != "final" &&
                t != "alignas") {
                name = t;
                ++pos;
            } else if (t == "alignas") {
                ++pos;
                if (at("("))
                    skipBalanced('(', ')');
            } else if (t == "<") {
                skipAngles(); // specialization arguments
            } else {
                break;
            }
        }
        if (at(";")) { // forward declaration
            ++pos;
            return;
        }
        if (at(":")) { // base clause
            while (!done() && !at("{") && !at(";"))
                ++pos;
        }
        if (at("{")) {
            ++pos;
            std::string qual =
                outer.empty() ? name : outer + "::" + name;
            parseDecls(qual);
            skipToSemi(); // trailing declarator list / the ';'
            return;
        }
        // `struct X y;` style elaborated declaration; treat as a decl.
        skipToSemi();
    }

    /**
     * Parse one declaration at namespace/class scope. Recognizes
     * function declarations/definitions (identifier + balanced parens +
     * trailing qualifier/annotation run ending in `{` or `;`) and
     * AP_LOCK_LEVEL-registered members; everything else is skipped to
     * its terminating `;`.
     */
    void parseOneDecl(const std::string& className)
    {
        std::string lastIdent;
        std::string qualPrefix; // from `Type::` pairs before the name
        bool tilde = false;
        while (!done()) {
            const Token& t = cur();
            const std::string& s = t.text;
            if (s == ";") {
                ++pos;
                return;
            }
            if (s == "}") // stray close: let the caller see it
                return;
            if (s == "=") {
                skipToSemi();
                return;
            }
            if (s == "{") { // brace init without '='
                skipBalanced('{', '}');
                continue;
            }
            if (s == "[") {
                // attribute [[...]] or array declarator [N]
                skipBalanced('[', ']');
                continue;
            }
            if (s == "~") {
                tilde = true;
                ++pos;
                continue;
            }
            if (s == "AP_LOCK_LEVEL" && !lastIdent.empty()) {
                ++pos;
                std::string arg;
                if (at("(")) {
                    ++pos;
                    if (!done())
                        arg = unquote(cur().text);
                    skipToCloseParen();
                }
                m.locks.push_back({lastIdent, arg, t.line});
                continue;
            }
            if (t.kind == Tok::Ident) {
                if (s == "operator") {
                    // fold the operator symbol into the name
                    lastIdent = "operator";
                    ++pos;
                    while (!done() && !at("("))
                        ++pos;
                    continue;
                }
                lastIdent = tilde ? "~" + s : s;
                tilde = false;
                ++pos;
                if (at("<")) {
                    size_t save = pos;
                    skipAngles();
                    if (done() || at(";") || at("{"))
                        pos = save; // was a comparison/mishap; back off
                }
                if (at("::")) {
                    qualPrefix = lastIdent;
                    // leave: next ident becomes the name
                }
                continue;
            }
            if (s == "(") {
                if (lastIdent.empty() || kNotCalls.count(lastIdent)) {
                    skipBalanced('(', ')');
                    continue;
                }
                parseFuncTail(className, qualPrefix, lastIdent, t.line);
                return;
            }
            ++pos;
        }
    }

    void skipToCloseParen()
    {
        int depth = 1;
        while (!done()) {
            if (at("("))
                ++depth;
            else if (at(")") && --depth == 0) {
                ++pos;
                return;
            }
            ++pos;
        }
    }

    /**
     * pos is at the '(' of a candidate function's parameter list.
     * Consume params, the trailing qualifier/annotation run, and the
     * body or ';'. Records the Func either way.
     */
    void parseFuncTail(const std::string& className,
                       const std::string& qualPrefix,
                       const std::string& name, int line)
    {
        Func f;
        f.name = name;
        f.className = qualPrefix.empty() ? className : qualPrefix;
        f.line = line;
        skipBalanced('(', ')');

        while (!done()) {
            const Token& t = cur();
            const std::string& s = t.text;
            if (s == ";") {
                ++pos;
                break;
            }
            if (s == "{") {
                f.hasBody = true;
                parseBody(f);
                break;
            }
            if (kAnnotations.count(s)) {
                Annotation a;
                a.name = s;
                a.line = t.line;
                ++pos;
                if (at("(")) {
                    ++pos;
                    if (!done())
                        a.arg = unquote(cur().text);
                    int depth = 1;
                    while (!done()) {
                        if (at("(")) {
                            ++depth;
                        } else if (at(")")) {
                            if (--depth == 0) {
                                ++pos;
                                break;
                            }
                        } else if (depth == 1 &&
                                   (cur().kind == Tok::String ||
                                    cur().kind == Tok::Ident)) {
                            a.args.push_back(unquote(cur().text));
                        }
                        ++pos;
                    }
                }
                if (s == "AP_LOCK_LEVEL")
                    m.locks.push_back({f.name, a.arg, a.line});
                f.anns.push_back(a);
                continue;
            }
            if (t.kind == Tok::Ident && kTrailingQuals.count(s)) {
                ++pos;
                if (at("("))
                    skipBalanced('(', ')'); // noexcept(expr)
                continue;
            }
            if (s == "&" || s == "&&") {
                ++pos;
                continue;
            }
            if (s == "->") { // trailing return type
                ++pos;
                while (!done() && !at("{") && !at(";") && !at("=")) {
                    if (at("<"))
                        skipAngles();
                    else if (at("("))
                        skipBalanced('(', ')');
                    else
                        ++pos;
                }
                continue;
            }
            if (s == "=") { // = default / = delete / = 0
                skipToSemi();
                break;
            }
            if (s == ":") { // constructor initializer list
                ++pos;
                skipCtorInit();
                continue; // lands on the body '{'
            }
            if (s == "(") { // not actually a function after all
                skipBalanced('(', ')');
                continue;
            }
            // Unrecognized token between ')' and the body (e.g. a
            // declarator continuation) — this was not a function.
            skipToSemi();
            return;
        }
        m.funcs.push_back(std::move(f));
    }

    /** After the ':' of a ctor init list; stop at the body '{'. */
    void skipCtorInit()
    {
        while (!done()) {
            // member or base name (possibly qualified / templated)
            while (atIdent() || at("::") || at("~"))
                ++pos;
            if (at("<"))
                skipAngles();
            while (atIdent() || at("::"))
                ++pos;
            if (at("("))
                skipBalanced('(', ')');
            else if (at("{"))
                skipBalanced('{', '}');
            if (at("...")) // pack expansion
                ++pos;
            if (at(",")) {
                ++pos;
                continue;
            }
            return; // expect the body '{' next
        }
    }

    // ---- function bodies ----------------------------------------------

    struct OpenScope
    {
        int idx;
        bool braced;
    };

    void parseBody(Func& f)
    {
        f.bodyBegin = pos; // at '{'
        f.scopes.push_back({-1, ScopeKind::Body, {}, cur().line});
        std::vector<OpenScope> stack{{0, true}};
        int braceDepth = 1;
        int parenDepth = 0;
        ++pos;

        auto topScope = [&]() { return stack.back().idx; };
        auto popUnbraced = [&]() {
            while (stack.size() > 1 && !stack.back().braced)
                stack.pop_back();
        };
        auto pushScope = [&](ScopeKind k,
                             std::vector<std::string> cond, int line,
                             bool braced) {
            f.scopes.push_back(
                {topScope(), k, std::move(cond), line});
            stack.push_back(
                {static_cast<int>(f.scopes.size()) - 1, braced});
        };

        while (!done() && braceDepth > 0) {
            const Token& t = cur();
            const std::string& s = t.text;

            if (s == "{") {
                pushScope(ScopeKind::Body, {}, t.line, true);
                ++braceDepth;
                ++pos;
                continue;
            }
            if (s == "}") {
                --braceDepth;
                popUnbraced();
                if (stack.size() > 1)
                    stack.pop_back();
                ++pos;
                continue;
            }
            if (s == "(") {
                ++parenDepth;
                ++pos;
                continue;
            }
            if (s == ")") {
                --parenDepth;
                ++pos;
                continue;
            }
            if (s == ";" && parenDepth == 0) {
                popUnbraced();
                ++pos;
                continue;
            }
            if (s == "[") {
                // [[attribute]] / lambda introducer / subscript
                if (pos + 1 < toks.size() &&
                    toks[pos + 1].text == "[") {
                    skipBalanced('[', ']');
                    continue;
                }
                if (isLambdaIntroducer()) {
                    parseLambdaHead(f, stack, braceDepth, t.line);
                    continue;
                }
                ++pos;
                continue;
            }
            if (t.kind == Tok::Ident &&
                (s == "if" || s == "while" || s == "for" ||
                 s == "switch")) {
                ScopeKind k = (s == "if" || s == "switch")
                                  ? ScopeKind::If
                                  : ScopeKind::Loop;
                ++pos;
                if (at("constexpr"))
                    ++pos;
                std::vector<std::string> cond;
                if (at("(")) {
                    int d = 0;
                    while (!done()) {
                        if (at("("))
                            ++d;
                        else if (at(")") && --d == 0) {
                            ++pos;
                            break;
                        } else if (cur().kind == Tok::Ident) {
                            cond.push_back(cur().text);
                        }
                        ++pos;
                    }
                }
                if (at("{")) {
                    pushScope(k, std::move(cond), t.line, true);
                    ++braceDepth;
                    ++pos;
                } else {
                    pushScope(k, std::move(cond), t.line, false);
                }
                continue;
            }
            if (t.kind == Tok::Ident && s == "do") {
                ++pos;
                if (at("{")) {
                    pushScope(ScopeKind::Loop, {}, t.line, true);
                    ++braceDepth;
                    ++pos;
                } else {
                    pushScope(ScopeKind::Loop, {}, t.line, false);
                }
                continue;
            }
            if (t.kind == Tok::Ident && s == "else") {
                ++pos;
                if (at("if"))
                    continue; // handled by the `if` branch above
                if (at("{")) {
                    pushScope(ScopeKind::Else, {}, t.line, true);
                    ++braceDepth;
                    ++pos;
                } else {
                    pushScope(ScopeKind::Else, {}, t.line, false);
                }
                continue;
            }
            if (t.kind == Tok::Ident && !kNotCalls.count(s) &&
                pos + 1 < toks.size() && toks[pos + 1].text == "(") {
                Call c;
                c.callee = s;
                c.receiver = receiverBefore(pos);
                c.tokIndex = pos;
                c.scope = topScope();
                c.line = t.line;
                f.calls.push_back(std::move(c));
                ++pos;
                continue;
            }
            ++pos;
        }
        f.bodyEnd = pos;
    }

    /** Is the '[' at pos a lambda introducer (vs. a subscript)? */
    bool isLambdaIntroducer() const
    {
        if (pos == 0)
            return true;
        const Token& p = toks[pos - 1];
        if (p.kind == Tok::Ident) {
            return p.text == "return" || p.text == "co_return";
        }
        if (p.kind != Tok::Punct)
            return false;
        static const std::set<std::string> kBefore = {
            "(", ",", "=", "{", "}", ";", "&&", "||", "!",
            ":", "?", "<", ">", "return",
        };
        return kBefore.count(p.text) > 0;
    }

    /**
     * pos is at a lambda's '['. Consume the introducer, parameter
     * list, and qualifiers; push a Lambda scope on the body '{'.
     */
    void parseLambdaHead(Func& f, std::vector<OpenScope>& stack,
                         int& braceDepth, int line)
    {
        skipBalanced('[', ']');
        if (at("("))
            skipBalanced('(', ')');
        while (!done() && !at("{") && !at(";") && !at(",") && !at(")")) {
            if (at("->")) {
                ++pos;
                while (!done() && !at("{") && !at(";")) {
                    if (at("<"))
                        skipAngles();
                    else
                        ++pos;
                }
            } else {
                ++pos;
            }
        }
        if (at("{")) {
            f.scopes.push_back(
                {stack.back().idx, ScopeKind::Lambda, {}, line});
            stack.push_back(
                {static_cast<int>(f.scopes.size()) - 1, true});
            ++braceDepth;
            ++pos;
        }
    }

    /** Last identifier of the receiver chain before a call at @p i. */
    std::string receiverBefore(size_t i) const
    {
        if (i == 0)
            return "";
        const Token& p = toks[i - 1];
        if (p.text != "." && p.text != "->" && p.text != "::")
            return "";
        size_t j = i - 2;
        if (j >= toks.size())
            return "";
        if (toks[j].kind == Tok::Ident)
            return toks[j].text;
        if (toks[j].text == ")" || toks[j].text == "]") {
            // walk back over one balanced group to the ident before it
            const std::string close = toks[j].text;
            const std::string open = close == ")" ? "(" : "[";
            int depth = 0;
            while (true) {
                if (toks[j].text == close)
                    ++depth;
                else if (toks[j].text == open && --depth == 0)
                    break;
                if (j == 0)
                    return "";
                --j;
            }
            if (j > 0 && toks[j - 1].kind == Tok::Ident)
                return toks[j - 1].text;
        }
        return "";
    }

    // ---- comment directives --------------------------------------------

    void parseDirectives()
    {
        for (const auto& c : m.lx.comments) {
            std::string text = trim(c.text);
            size_t tag = text.find("aplint:");
            if (tag == std::string::npos)
                continue;
            std::string body = trim(text.substr(tag + 7));
            if (body.rfind("lock-order:", 0) == 0) {
                std::vector<std::string> order;
                std::string rest = body.substr(11);
                size_t start = 0;
                while (start <= rest.size()) {
                    size_t lt = rest.find('<', start);
                    std::string item = trim(
                        rest.substr(start, lt == std::string::npos
                                               ? std::string::npos
                                               : lt - start));
                    if (!item.empty())
                        order.push_back(item);
                    if (lt == std::string::npos)
                        break;
                    start = lt + 1;
                }
                m.lockOrders.push_back(std::move(order));
                continue;
            }
            if (body.rfind("pte-edges:", 0) == 0) {
                // "A -> B, C -> D, ..." — normalized to "A->B".
                std::string rest = body.substr(10);
                size_t start = 0;
                while (start <= rest.size()) {
                    size_t comma = rest.find(',', start);
                    std::string item = trim(
                        rest.substr(start, comma == std::string::npos
                                               ? std::string::npos
                                               : comma - start));
                    if (!item.empty()) {
                        size_t arrow = item.find("->");
                        if (arrow != std::string::npos) {
                            std::string from =
                                trim(item.substr(0, arrow));
                            std::string to =
                                trim(item.substr(arrow + 2));
                            item = from + "->" + to;
                        }
                        m.pteEdges.push_back(item);
                    }
                    if (comma == std::string::npos)
                        break;
                    start = comma + 1;
                }
                continue;
            }
            bool fileScope = body.rfind("allow-file(", 0) == 0;
            bool lineScope = body.rfind("allow(", 0) == 0;
            if (!fileScope && !lineScope)
                continue;
            Waiver w;
            w.line = c.line;
            w.fileScope = fileScope;
            size_t open = body.find('(');
            size_t close = body.find(')', open);
            if (close == std::string::npos) {
                w.malformed = true;
            } else {
                w.rule = trim(body.substr(open + 1, close - open - 1));
                w.reason = trim(body.substr(close + 1));
                if (w.rule.empty() || w.reason.empty())
                    w.malformed = true;
            }
            m.waivers.push_back(std::move(w));
        }
    }
};

} // namespace

FileModel
parseFile(const std::string& path, const std::string& source)
{
    FileModel m;
    m.path = path;
    m.lx = lex(source);
    Parser(m).run();
    return m;
}

} // namespace ap::lint
