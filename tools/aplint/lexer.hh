/**
 * @file
 * A lightweight C++ tokenizer for aplint. No preprocessing: macro
 * names (including the AP_* contract annotations) appear verbatim in
 * the token stream, which is exactly what the rules key on.
 * Preprocessor directives are consumed whole, comments are collected
 * separately for waiver/directive scanning.
 */

#ifndef APLINT_LEXER_HH
#define APLINT_LEXER_HH

#include <string>
#include <vector>

namespace ap::lint {

/** Token classification; Punct covers all operators and separators. */
enum class Tok { Ident, Number, String, Char, Punct };

/** One token with its source position. */
struct Token
{
    Tok kind;
    std::string text;
    int line = 0;
};

/** One comment, kept aside for waiver and directive parsing. */
struct Comment
{
    std::string text; ///< without the // or /* */ framing
    int line = 0;     ///< line the comment starts on
};

/** Result of tokenizing one file. */
struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/** Tokenize @p source (named @p file for diagnostics only). */
LexResult lex(const std::string& source);

} // namespace ap::lint

#endif // APLINT_LEXER_HH
