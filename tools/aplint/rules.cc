#include "rules.hh"

#include <algorithm>
#include <cctype>

namespace ap::lint {

namespace {

std::string
lower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
annotatedGlobally(const std::set<std::string>& set, const Func& f)
{
    return set.count(f.name) > 0;
}

/**
 * Resolve a call receiver to a registered lock class. Looks through
 * AP_LOCK_LEVEL member/accessor names and per-function reference
 * aliases of the form `auto& lk = <...registered name...>;`.
 */
std::string
resolveLockClass(const std::string& receiver, const GlobalModel& g,
                 const std::map<std::string, std::string>& aliases)
{
    auto it = g.lockNames.find(receiver);
    if (it != g.lockNames.end())
        return it->second;
    auto at = aliases.find(receiver);
    if (at != aliases.end())
        return at->second;
    return "";
}

} // namespace

/**
 * Is this condition identifier lane-dependent? Matches the lane index
 * itself and leader variables, but deliberately not plural masks
 * ("lanes", "activeMask"): a ballot mask is warp-uniform, so looping
 * on it is lockstep-safe.
 */
bool
laneIsh(const std::string& ident)
{
    std::string l = lower(ident);
    return l == "lane" || l == "leader" || l == "lid" ||
           l.find("laneid") != std::string::npos;
}

/** Find `auto& lk = ... <registered>() ...;` aliases in a body. */
std::map<std::string, std::string>
collectAliases(const FileModel& m, const Func& f, const GlobalModel& g)
{
    std::map<std::string, std::string> aliases;
    const auto& toks = m.lx.tokens;
    for (size_t i = f.bodyBegin + 2;
         i + 1 < f.bodyEnd && i + 1 < toks.size(); ++i) {
        if (toks[i].text != "=" || toks[i - 1].kind != Tok::Ident ||
            toks[i - 2].text != "&")
            continue;
        for (size_t j = i + 1; j < f.bodyEnd && toks[j].text != ";";
             ++j) {
            auto it = g.lockNames.find(toks[j].text);
            if (it != g.lockNames.end()) {
                aliases[toks[i - 1].text] = it->second;
                break;
            }
        }
    }
    return aliases;
}

/** Pair up acquire/release call sites into held regions. */
std::vector<HeldRegion>
computeHeldRegions(const Func& f, const GlobalModel& g,
                   const std::map<std::string, std::string>& aliases)
{
    std::vector<HeldRegion> regions;
    for (const Call& c : f.calls) {
        if (c.callee == "acquire") {
            std::string cls = resolveLockClass(c.receiver, g, aliases);
            if (!cls.empty())
                regions.push_back({cls, c.tokIndex, SIZE_MAX, c.line});
        } else if (c.callee == "release") {
            std::string cls = resolveLockClass(c.receiver, g, aliases);
            if (cls.empty())
                continue;
            for (auto it = regions.rbegin(); it != regions.rend();
                 ++it) {
                if (it->lockClass == cls && it->endTok == SIZE_MAX) {
                    it->endTok = c.tokIndex;
                    break;
                }
            }
        }
    }
    return regions;
}

bool
inRegion(const HeldRegion& r, size_t tok)
{
    return tok > r.beginTok && tok < r.endTok;
}

size_t
chainStart(const std::vector<Token>& toks, size_t i)
{
    while (i >= 2) {
        const std::string& sep = toks[i - 1].text;
        if (sep != "." && sep != "->" && sep != "::")
            break;
        size_t j = i - 2;
        if (toks[j].text == ")" || toks[j].text == "]") {
            const std::string close = toks[j].text;
            const std::string open = close == ")" ? "(" : "[";
            int depth = 0;
            while (j > 0) {
                if (toks[j].text == close)
                    ++depth;
                else if (toks[j].text == open && --depth == 0)
                    break;
                --j;
            }
            if (j == 0)
                break;
            --j; // the ident before the group, if any
        }
        if (toks[j].kind != Tok::Ident)
            break;
        i = j;
    }
    return i;
}

namespace {

void
emit(std::vector<Finding>& out, const FileModel& m, int line,
     const char* rule, std::string msg)
{
    out.push_back({m.path, line, rule, std::move(msg), false});
}

// ---- individual rules --------------------------------------------------

void
ruleLeaderOnly(const FileModel& m, const Func& f, const GlobalModel& g,
               std::vector<Finding>& out)
{
    if (annotatedGlobally(g.leaderOnly, f) ||
        annotatedGlobally(g.electsLeader, f))
        return;
    for (const Call& c : f.calls) {
        if (!g.leaderOnly.count(c.callee) || c.callee == f.name)
            continue;
        // Leader election evidence: a ballot and an ffs-style scan
        // earlier in the same body (paper Listing 1's idiom).
        bool sawBallot = false, sawFfs = false;
        for (const Call& prior : f.calls) {
            if (prior.tokIndex >= c.tokIndex)
                break;
            if (prior.callee == "ballot")
                sawBallot = true;
            if (lower(prior.callee).find("ffs") != std::string::npos)
                sawFfs = true;
        }
        if (sawBallot && sawFfs)
            continue;
        emit(out, m, c.line, "leader-only",
             "'" + c.callee + "' is AP_LEADER_ONLY but '" + f.name +
                 "' neither elects a leader (ballot+ffs) nor is "
                 "marked AP_LEADER_ONLY/AP_ELECTS_LEADER");
    }
}

void
ruleLockstepDivergence(const FileModel& m, const Func& f,
                       const GlobalModel& g, std::vector<Finding>& out)
{
    for (const Call& c : f.calls) {
        if (!g.lockstep.count(c.callee) || c.callee == f.name)
            continue;
        for (int s = c.scope; s >= 0; s = f.scopes[s].parent) {
            const ScopeNode& sc = f.scopes[s];
            if (sc.kind != ScopeKind::If && sc.kind != ScopeKind::Loop &&
                sc.kind != ScopeKind::Else)
                continue;
            const ScopeNode& condScope =
                sc.kind == ScopeKind::Else && sc.parent >= 0
                    ? f.scopes[s] // else has no cond of its own; skip
                    : sc;
            bool divergent = false;
            for (const std::string& id : condScope.condIdents) {
                if (laneIsh(id)) {
                    divergent = true;
                    break;
                }
            }
            if (divergent) {
                emit(out, m, c.line, "lockstep-divergence",
                     "'" + c.callee +
                         "' is AP_LOCKSTEP but is called under a "
                         "lane-divergent guard (line " +
                         std::to_string(sc.line) + ")");
                break;
            }
        }
    }
}

void
ruleNoYield(const FileModel& m, const Func& f, const GlobalModel& g,
            const std::vector<HeldRegion>& regions,
            std::vector<Finding>& out)
{
    bool noYieldFn = annotatedGlobally(g.noYield, f);
    for (const Call& c : f.calls) {
        if (!g.yields.count(c.callee) || c.callee == f.name)
            continue;
        if (noYieldFn) {
            emit(out, m, c.line, "no-yield",
                 "'" + c.callee + "' may yield the fiber but '" +
                     f.name + "' is AP_NO_YIELD");
            continue;
        }
        // Lock handoff itself (acquire/release of a later class) is
        // governed by the lock-order rule, not this one.
        if (c.callee == "acquire" || c.callee == "release" ||
            c.callee == "tryAcquire")
            continue;
        for (const HeldRegion& r : regions) {
            if (inRegion(r, c.tokIndex)) {
                emit(out, m, c.line, "no-yield",
                     "'" + c.callee +
                         "' may yield the fiber while lock class '" +
                         r.lockClass + "' (acquired line " +
                         std::to_string(r.line) + ") is held");
                break;
            }
        }
    }
}

void
ruleLockOrder(const FileModel& m, const Func& f, const GlobalModel& g,
              const std::map<std::string, std::string>& aliases,
              const std::vector<HeldRegion>& regions,
              std::vector<Finding>& out)
{
    auto declares = [&](const std::string& cls) {
        auto it = g.acquires.find(f.name);
        return it != g.acquires.end() && it->second.count(cls) > 0;
    };
    auto rank = [&](const std::string& cls) {
        auto it = g.lockRank.find(cls);
        return it == g.lockRank.end() ? -1 : it->second;
    };
    for (const Call& c : f.calls) {
        if (c.callee == "acquire") {
            std::string cls = resolveLockClass(c.receiver, g, aliases);
            if (cls.empty())
                continue;
            if (!declares(cls)) {
                emit(out, m, c.line, "lock-order",
                     "'" + f.name + "' acquires lock class '" + cls +
                         "' without declaring AP_ACQUIRES(\"" + cls +
                         "\")");
            }
            if (!g.lockOrder.empty() && rank(cls) < 0) {
                emit(out, m, c.line, "lock-order",
                     "lock class '" + cls +
                         "' is not in the declared lock-order");
            }
            for (const HeldRegion& r : regions) {
                if (r.lockClass == cls || !inRegion(r, c.tokIndex))
                    continue;
                if (rank(r.lockClass) >= 0 && rank(cls) >= 0 &&
                    rank(r.lockClass) >= rank(cls)) {
                    emit(out, m, c.line, "lock-order",
                         "acquiring '" + cls + "' while holding '" +
                             r.lockClass +
                             "' violates the declared order");
                }
            }
            continue;
        }
        // Interprocedural: calling something that acquires class D
        // while holding class C needs C < D in the declared order.
        auto it = g.acquires.find(c.callee);
        if (it == g.acquires.end() || c.callee == f.name)
            continue;
        for (const HeldRegion& r : regions) {
            if (!inRegion(r, c.tokIndex))
                continue;
            for (const std::string& d : it->second) {
                if (d == r.lockClass)
                    continue;
                if (rank(r.lockClass) >= 0 && rank(d) >= 0 &&
                    rank(r.lockClass) >= rank(d)) {
                    emit(out, m, c.line, "lock-order",
                         "'" + c.callee + "' may acquire '" + d +
                             "' while '" + r.lockClass +
                             "' is held, violating the declared "
                             "order");
                }
            }
        }
    }
}

void
ruleLinkedEscape(const FileModel& m, const Func& f, const GlobalModel& g,
                 std::vector<Finding>& out)
{
    const auto& toks = m.lx.tokens;
    for (const Call& c : f.calls) {
        if (!g.requiresLinked.count(c.callee) || c.callee == f.name)
            continue;
        size_t s = chainStart(toks, c.tokIndex);
        if (s == 0)
            continue;
        const Token& before = toks[s - 1];
        if (before.text == "return" &&
            !annotatedGlobally(g.requiresLinked, f)) {
            emit(out, m, c.line, "linked-escape",
                 "returning the AP_REQUIRES_LINKED pointer from '" +
                     c.callee + "' lets it outlive the linking scope");
            continue;
        }
        if (before.text == "=" && s >= 3 &&
            toks[s - 2].kind == Tok::Ident &&
            (toks[s - 3].text == "." || toks[s - 3].text == "->")) {
            emit(out, m, c.line, "linked-escape",
                 "storing the AP_REQUIRES_LINKED pointer from '" +
                     c.callee +
                     "' into object state lets it outlive the "
                     "linking scope");
        }
    }
}

void
ruleAssertSideEffect(const FileModel& m, const Func& f,
                     std::vector<Finding>& out)
{
    static const std::set<std::string> kMutators = {
        "++", "--", "=",  "+=", "-=",  "*=",  "/=",
        "%=", "&=", "|=", "^=", "<<=", ">>=",
    };
    const auto& toks = m.lx.tokens;
    for (const Call& c : f.calls) {
        if (c.callee != "AP_ASSERT" && c.callee != "AP_CHECK")
            continue;
        size_t i = c.tokIndex + 1; // at '('
        if (i >= toks.size() || toks[i].text != "(")
            continue;
        int depth = 1;
        for (++i; i < toks.size() && depth > 0; ++i) {
            const std::string& t = toks[i].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}") {
                --depth;
            } else if (t == "," && depth == 1) {
                break; // end of the condition argument
            } else if (depth >= 1 && toks[i].kind == Tok::Punct &&
                       kMutators.count(t)) {
                emit(out, m, c.line, "assert-side-effect",
                     c.callee + " condition contains '" + t +
                         "'; assertion arguments must be "
                         "side-effect free");
                break;
            }
        }
    }
}

void
ruleWaiverSyntax(const FileModel& m, std::vector<Finding>& out)
{
    for (const Waiver& w : m.waivers) {
        if (w.malformed) {
            emit(out, m, w.line, "waiver-syntax",
                 "waiver needs both a rule and a reason: "
                 "// aplint: allow(<rule>) <reason>");
        } else if (!knownRules().count(w.rule)) {
            emit(out, m, w.line, "waiver-syntax",
                 "waiver names unknown rule '" + w.rule + "'");
        }
    }
}

} // namespace

const std::set<std::string>&
knownRules()
{
    static const std::set<std::string> kRules = {
        "leader-only",   "lockstep-divergence", "no-yield",
        "lock-order",    "linked-escape",       "assert-side-effect",
        "waiver-syntax", "must-check-status",   "linked-escape-v2",
        "contract-propagation", "unused-waiver", "ref-balance",
        "state-edge",    "transition-decl",
    };
    return kRules;
}

GlobalModel
buildGlobal(const std::vector<FileModel>& files,
            std::vector<Finding>& findings)
{
    GlobalModel g;
    for (const FileModel& m : files) {
        for (const Func& f : m.funcs) {
            for (const Annotation& a : f.anns) {
                if (a.name == "AP_LOCKSTEP")
                    g.lockstep.insert(f.name);
                else if (a.name == "AP_LEADER_ONLY")
                    g.leaderOnly.insert(f.name);
                else if (a.name == "AP_ELECTS_LEADER")
                    g.electsLeader.insert(f.name);
                else if (a.name == "AP_REQUIRES_LINKED") {
                    g.requiresLinked.insert(f.name);
                    g.returnsLinked.insert(f.name);
                } else if (a.name == "AP_RETURNS_LINKED")
                    g.returnsLinked.insert(f.name);
                else if (a.name == "AP_MUST_CHECK")
                    g.mustCheck.insert(f.name);
                else if (a.name == "AP_NO_YIELD")
                    g.noYield.insert(f.name);
                else if (a.name == "AP_YIELDS")
                    g.yields.insert(f.name);
                else if (a.name == "AP_ACQUIRES")
                    g.acquires[f.name].insert(a.arg);
                else if (a.name == "AP_ACQUIRES_REF")
                    g.acquiresRef[f.name] = a.arg;
                else if (a.name == "AP_RELEASES_REF")
                    g.releasesRef[f.name] = a.arg;
                else if (a.name == "AP_BALANCED")
                    g.balanced.insert(f.name);
                else if (a.name == "AP_TRANSITIONS")
                    for (const std::string& e : a.args)
                        g.transitions[f.name].insert(e);
            }
        }
        for (const LockDecl& l : m.locks)
            g.lockNames[l.name] = l.lockClass;
        for (const auto& order : m.lockOrders) {
            if (g.lockOrder.empty()) {
                g.lockOrder = order;
            } else if (g.lockOrder != order) {
                findings.push_back(
                    {m.path, 0, "lock-order",
                     "conflicting lock-order directives across files",
                     false});
            }
        }
        if (!m.pteEdges.empty()) {
            if (g.pteEdges.empty()) {
                g.pteEdges = m.pteEdges;
            } else if (g.pteEdges != m.pteEdges) {
                findings.push_back(
                    {m.path, 0, "transition-decl",
                     "conflicting pte-edges directives across files",
                     false});
            }
        }
    }
    for (const std::string& e : g.pteEdges)
        g.pteEdgeSet.insert(e);
    for (size_t i = 0; i < g.lockOrder.size(); ++i)
        g.lockRank[g.lockOrder[i]] = static_cast<int>(i);
    return g;
}

void
runRules(const FileModel& m, const GlobalModel& g,
         std::vector<Finding>& findings)
{
    for (const Func& f : m.funcs) {
        if (!f.hasBody)
            continue;
        auto aliases = collectAliases(m, f, g);
        auto regions = computeHeldRegions(f, g, aliases);
        ruleLeaderOnly(m, f, g, findings);
        ruleLockstepDivergence(m, f, g, findings);
        ruleNoYield(m, f, g, regions, findings);
        ruleLockOrder(m, f, g, aliases, regions, findings);
        ruleLinkedEscape(m, f, g, findings);
        ruleAssertSideEffect(m, f, findings);
    }
    ruleWaiverSyntax(m, findings);
}

} // namespace ap::lint
