#include "callgraph.hh"

#include <algorithm>
#include <cctype>

namespace ap::lint {

namespace {

std::string
lowered(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** ballot + ffs anywhere in the body (paper Listing 1's idiom). */
bool
electionIdiom(const Func& f)
{
    bool ballot = false, ffs = false;
    for (const Call& c : f.calls) {
        if (c.callee == "ballot")
            ballot = true;
        if (lowered(c.callee).find("ffs") != std::string::npos)
            ffs = true;
    }
    return ballot && ffs;
}

/** "callee" or "callee -> rest-of-chain", capped for readability. */
std::string
chainVia(const std::string& callee,
         const std::map<std::string, std::string>& witness)
{
    auto it = witness.find(callee);
    if (it == witness.end() || it->second.empty())
        return callee;
    std::string s = callee + " -> " + it->second;
    if (s.size() > 96)
        s = s.substr(0, 93) + "...";
    return s;
}

void
emit(std::vector<Finding>& out, const FileModel& m, int line,
     std::string msg)
{
    out.push_back({m.path, line, "contract-propagation", std::move(msg),
                   false});
}

/** Lock-handoff calls the no-yield rule family always skips. */
bool
isLockOp(const std::string& callee)
{
    return callee == "acquire" || callee == "release" ||
           callee == "tryAcquire";
}

} // namespace

CallGraph
buildCallGraph(const std::vector<FileModel>& files)
{
    CallGraph cg;
    for (const FileModel& m : files) {
        for (const Func& f : m.funcs) {
            CgNode& n = cg.nodes[f.name];
            n.name = f.name;
            if (!f.hasBody)
                continue;
            n.hasBody = true;
            if (electionIdiom(f))
                n.elects = true;
            for (const Call& c : f.calls) {
                if (c.callee == f.name)
                    continue; // self edges add nothing to summaries
                n.callees.insert(c.callee);
                cg.callers[c.callee].insert(f.name);
            }
        }
    }
    return cg;
}

Summaries
propagate(const CallGraph& cg, const GlobalModel& g)
{
    Summaries s;
    s.yields = g.yields;
    s.lockstep = g.lockstep;
    s.leaderOnly = g.leaderOnly;
    s.acquires = g.acquires;

    // Monotone fixpoint: each pass can only add facts over finite
    // name sets, so iteration terminates even with recursion.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& [name, node] : cg.nodes) {
            if (!node.hasBody)
                continue;
            for (const std::string& callee : node.callees) {
                // Yields: a declared AP_NO_YIELD boundary stops the
                // inference upward — callers trust the declaration,
                // and the body's own violation is diagnosed below.
                if (s.yields.count(callee) && !s.yields.count(name) &&
                    !g.noYield.count(name)) {
                    s.yields.insert(name);
                    s.yieldsWitness[name] =
                        chainVia(callee, s.yieldsWitness);
                    changed = true;
                }
                // Lockstep: calling a whole-warp entry makes the
                // caller a whole-warp entry.
                if (s.lockstep.count(callee) &&
                    !s.lockstep.count(name)) {
                    s.lockstep.insert(name);
                    s.lockstepWitness[name] =
                        chainVia(callee, s.lockstepWitness);
                    changed = true;
                }
                // Leader-only: an election boundary (declared or the
                // ballot+ffs idiom in the body) satisfies the callee's
                // requirement; anything else passes it to callers.
                if (s.leaderOnly.count(callee) &&
                    !s.leaderOnly.count(name) && !node.elects &&
                    !g.electsLeader.count(name)) {
                    s.leaderOnly.insert(name);
                    s.leaderOnlyWitness[name] =
                        chainVia(callee, s.leaderOnlyWitness);
                    changed = true;
                }
                // Acquires: plain transitive closure.
                auto it = s.acquires.find(callee);
                if (it != s.acquires.end()) {
                    for (const std::string& cls : it->second)
                        if (s.acquires[name].insert(cls).second)
                            changed = true;
                }
            }
        }
    }
    return s;
}

void
runPropagation(const FileModel& m, const GlobalModel& g,
               const CallGraph& cg, const Summaries& sums,
               std::vector<Finding>& findings)
{
    auto rank = [&](const std::string& cls) {
        auto it = g.lockRank.find(cls);
        return it == g.lockRank.end() ? -1 : it->second;
    };
    // Inferred-but-undeclared: declared annotations stay with the v1
    // rules so no call site is ever reported by both layers.
    auto inferredOnly = [](const std::set<std::string>& inf,
                           const std::set<std::string>& decl,
                           const std::string& n) {
        return inf.count(n) > 0 && decl.count(n) == 0;
    };

    for (const Func& f : m.funcs) {
        if (!f.hasBody)
            continue;
        auto aliases = collectAliases(m, f, g);
        auto regions = computeHeldRegions(f, g, aliases);
        auto nodeIt = cg.nodes.find(f.name);
        bool elects = g.electsLeader.count(f.name) > 0 ||
                      (nodeIt != cg.nodes.end() && nodeIt->second.elects);
        bool noYieldFn = g.noYield.count(f.name) > 0;

        for (const Call& c : f.calls) {
            if (c.callee == f.name)
                continue;

            // 1. AP_NO_YIELD body reaching a yield through a wrapper.
            if (noYieldFn &&
                inferredOnly(sums.yields, g.yields, c.callee)) {
                emit(findings, m, c.line,
                     "'" + c.callee +
                         "' may yield the fiber transitively (" +
                         chainVia(c.callee, sums.yieldsWitness) +
                         ") but '" + f.name + "' is AP_NO_YIELD");
            }

            // 2. Inferred yield while a registered lock is held.
            if (!noYieldFn && !isLockOp(c.callee) &&
                inferredOnly(sums.yields, g.yields, c.callee)) {
                for (const HeldRegion& r : regions) {
                    if (inRegion(r, c.tokIndex)) {
                        emit(findings, m, c.line,
                             "'" + c.callee +
                                 "' may yield transitively (" +
                                 chainVia(c.callee,
                                          sums.yieldsWitness) +
                                 ") while lock class '" + r.lockClass +
                                 "' (acquired line " +
                                 std::to_string(r.line) + ") is held");
                        break;
                    }
                }
            }

            // 3. Inferred lockstep entry under a divergent lane guard.
            if (inferredOnly(sums.lockstep, g.lockstep, c.callee)) {
                for (int sidx = c.scope; sidx >= 0;
                     sidx = f.scopes[sidx].parent) {
                    const ScopeNode& sc = f.scopes[sidx];
                    if (sc.kind != ScopeKind::If &&
                        sc.kind != ScopeKind::Loop &&
                        sc.kind != ScopeKind::Else)
                        continue;
                    bool divergent = false;
                    for (const std::string& id : sc.condIdents)
                        if (laneIsh(id))
                            divergent = true;
                    if (divergent) {
                        emit(findings, m, c.line,
                             "'" + c.callee +
                                 "' is lockstep by inference (" +
                                 chainVia(c.callee,
                                          sums.lockstepWitness) +
                                 ") but is called under a "
                                 "lane-divergent guard (line " +
                                 std::to_string(sc.line) + ")");
                        break;
                    }
                }
            }

            // 4. Inferred leader-only callee from a non-electing body.
            if (!elects && !g.leaderOnly.count(f.name) &&
                inferredOnly(sums.leaderOnly, g.leaderOnly, c.callee)) {
                emit(findings, m, c.line,
                     "'" + c.callee + "' is leader-only by inference (" +
                         chainVia(c.callee, sums.leaderOnlyWitness) +
                         ") but '" + f.name +
                         "' neither elects a leader nor is marked "
                         "AP_LEADER_ONLY/AP_ELECTS_LEADER");
            }

            // 5. Interprocedural lock-order closure: the callee's
            // transitive (not directly declared) acquires must come
            // later in the canonical order than anything held here.
            auto effIt = sums.acquires.find(c.callee);
            if (effIt == sums.acquires.end())
                continue;
            auto declIt = g.acquires.find(c.callee);
            for (const std::string& d : effIt->second) {
                if (declIt != g.acquires.end() && declIt->second.count(d))
                    continue; // direct acquires: v1 lock-order rule
                for (const HeldRegion& r : regions) {
                    if (!inRegion(r, c.tokIndex) || r.lockClass == d)
                        continue;
                    if (rank(r.lockClass) >= 0 && rank(d) >= 0 &&
                        rank(r.lockClass) >= rank(d)) {
                        emit(findings, m, c.line,
                             "'" + c.callee +
                                 "' may transitively acquire '" + d +
                                 "' while '" + r.lockClass +
                                 "' is held, violating the declared "
                                 "lock order");
                    }
                }
            }
        }
    }
}

} // namespace ap::lint
