/**
 * @file
 * aplint driver: walks the tree, parses every C++ source, builds the
 * cross-file registries, runs the rules, and applies waivers. Used by
 * both the CLI (main.cc) and the test suite.
 */

#ifndef APLINT_DRIVER_HH
#define APLINT_DRIVER_HH

#include "rules.hh"

#include <string>
#include <utility>
#include <vector>

namespace ap::lint {

struct Options
{
    std::string root = ".";
    /** Files or directories, relative to root (or absolute). */
    std::vector<std::string> paths = {"src", "tests", "bench",
                                      "examples", "tools"};
    /** Path substrings to skip (e.g. fixture directories). */
    std::vector<std::string> excludes;
    /** Whole-program passes: call graph, contract propagation, and
     *  summary-driven yield invalidation in the dataflow rules. */
    bool wpa = true;
    /** Promote unused-waiver notes to gating findings. */
    bool strictWaivers = false;
    /** Baseline file of tolerated findings ("" = none). */
    std::string baselinePath;
    /** Collect per-file parse/analysis timings (see toStats). */
    bool stats = false;
};

struct Report
{
    std::vector<Finding> findings; ///< waived ones have waived=true
    int filesScanned = 0;
    /** Files served from the process-wide parse cache this run. */
    int cacheHits = 0;
    /** Wall-clock for the whole analyze() call, milliseconds. */
    double totalMillis = 0.0;
    /** Per-file analysis wall-clock (path, ms); only under stats. */
    std::vector<std::pair<std::string, double>> fileMillis;

    /** Gating findings: not waived, not baselined, not advisory. */
    int unwaivedCount() const
    {
        int n = 0;
        for (const auto& f : findings)
            n += (f.waived || f.note || f.baselined) ? 0 : 1;
        return n;
    }
    int noteCount() const
    {
        int n = 0;
        for (const auto& f : findings)
            n += f.note ? 1 : 0;
        return n;
    }
    int baselinedCount() const
    {
        int n = 0;
        for (const auto& f : findings)
            n += f.baselined ? 1 : 0;
        return n;
    }
};

/** Run the full analysis. */
Report analyze(const Options& opts);

/** Render a report, one `file:line: [rule] message` per finding. */
std::string toText(const Report& r);

/** Render a report as a JSON object for CI consumption. */
std::string toJson(const Report& r);

/** Render the unwaived findings in baseline format (see toJson). */
std::string toBaseline(const Report& r);

/**
 * Render a report as SARIF 2.1.0 (one run, tool "aplint") for code
 * scanning UIs. Waived and baselined findings are omitted; notes map
 * to level "note", everything else to "error".
 */
std::string toSarif(const Report& r);

/** Render the timing/cache counters collected under Options::stats. */
std::string toStats(const Report& r);

} // namespace ap::lint

#endif // APLINT_DRIVER_HH
