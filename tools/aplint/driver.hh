/**
 * @file
 * aplint driver: walks the tree, parses every C++ source, builds the
 * cross-file registries, runs the rules, and applies waivers. Used by
 * both the CLI (main.cc) and the test suite.
 */

#ifndef APLINT_DRIVER_HH
#define APLINT_DRIVER_HH

#include "rules.hh"

#include <string>
#include <vector>

namespace ap::lint {

struct Options
{
    std::string root = ".";
    /** Files or directories, relative to root (or absolute). */
    std::vector<std::string> paths = {"src", "tests", "bench",
                                      "examples", "tools"};
    /** Path substrings to skip (e.g. fixture directories). */
    std::vector<std::string> excludes;
};

struct Report
{
    std::vector<Finding> findings; ///< waived ones have waived=true
    int filesScanned = 0;

    int unwaivedCount() const
    {
        int n = 0;
        for (const auto& f : findings)
            n += f.waived ? 0 : 1;
        return n;
    }
};

/** Run the full analysis. */
Report analyze(const Options& opts);

/** Render a report, one `file:line: [rule] message` per finding. */
std::string toText(const Report& r);

/** Render a report as a JSON object for CI consumption. */
std::string toJson(const Report& r);

} // namespace ap::lint

#endif // APLINT_DRIVER_HH
