#include "dataflow.hh"

#include <map>
#include <set>
#include <string>

namespace ap::lint {

namespace {

/** Abstract value of one tracked local. */
struct VarState
{
    bool isStatus = false; ///< must-check result
    bool isLinked = false; ///< linked raw pointer
    std::string origin;    ///< producing callee
    std::string receiver;  ///< producer's receiver object (linked)
    int declLine = 0;
    int depth = 0;         ///< block depth where tracking started
    bool read = false;     ///< status: inspected on this path
    bool stale = false;    ///< linked: link gone on this path
    int staleLine = 0;
    std::string staleWhy;
    bool reported = false; ///< one diagnostic per variable
};

using State = std::map<std::string, VarState>;

/** Path-join: status needs reads on BOTH arms, staleness on either. */
State
join(const State& a, const State& b)
{
    State out = a;
    for (const auto& [name, vb] : b) {
        auto it = out.find(name);
        if (it == out.end()) {
            out[name] = vb;
            continue;
        }
        VarState& va = it->second;
        va.read = va.read && vb.read;
        va.reported = va.reported || vb.reported;
        if (!va.stale && vb.stale) {
            va.stale = true;
            va.staleLine = vb.staleLine;
            va.staleWhy = vb.staleWhy;
        }
    }
    return out;
}

/** Unlink operations that invalidate a receiver's linked frames. */
const std::set<std::string> kUnlinkers = {"destroy", "gmunmap",
                                          "releaseLanes"};

class FlowAnalyzer
{
  public:
    FlowAnalyzer(const FileModel& m, const Func& f, const GlobalModel& g,
                 const Summaries* sums, std::vector<Finding>& out)
        : m_(m), f_(f), g_(g), sums_(sums), out_(out),
          toks_(m.lx.tokens)
    {
        for (const Call& c : f.calls)
            callAt_[c.tokIndex] = &c;
    }

    void run()
    {
        if (!f_.hasBody || f_.bodyEnd <= f_.bodyBegin + 1)
            return;
        State st;
        analyzeSeq(f_.bodyBegin + 1, f_.bodyEnd - 1, st, 0);
        killScope(st, 0);
    }

  private:
    const FileModel& m_;
    const Func& f_;
    const GlobalModel& g_;
    const Summaries* sums_;
    std::vector<Finding>& out_;
    const std::vector<Token>& toks_;
    std::map<size_t, const Call*> callAt_;
    std::set<std::string> emitted_; ///< dedupe across loop passes

    // ---- emission ------------------------------------------------------

    void emit(int line, const char* rule, const std::string& msg)
    {
        std::string key =
            std::string(rule) + ":" + std::to_string(line) + ":" + msg;
        if (!emitted_.insert(key).second)
            return;
        out_.push_back({m_.path, line, rule, msg, false});
    }

    // ---- token helpers -------------------------------------------------

    const std::string& text(size_t i) const { return toks_[i].text; }

    size_t matchGroup(size_t open, size_t bound) const
    {
        const std::string& o = text(open);
        const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
        int depth = 0;
        for (size_t i = open; i < bound; ++i) {
            if (text(i) == o)
                ++depth;
            else if (text(i) == c && --depth == 0)
                return i;
        }
        return bound;
    }

    /** End of a statement: first `;` outside any bracket group. */
    size_t stmtEnd(size_t pos, size_t bound) const
    {
        int depth = 0;
        for (size_t i = pos; i < bound; ++i) {
            const std::string& t = text(i);
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            else if (t == ";" && depth <= 0)
                return i;
        }
        return bound;
    }

    /** Is token i a plain occurrence of a tracked variable name? */
    bool isVarUse(size_t i, const std::string& name) const
    {
        if (toks_[i].kind != Tok::Ident || text(i) != name)
            return false;
        if (i + 1 < toks_.size() && text(i + 1) == "(")
            return false; // a call, not the variable
        if (i > 0 && (text(i - 1) == "." || text(i - 1) == "->" ||
                      text(i - 1) == "::"))
            return false; // member of some other object
        return true;
    }

    bool callYields(const std::string& callee) const
    {
        if (g_.yields.count(callee))
            return true;
        return sums_ && sums_->yields.count(callee) > 0;
    }

    // ---- state transitions ---------------------------------------------

    void markStaleAfterYield(State& st, const Call& c)
    {
        for (auto& [name, v] : st) {
            if (!v.isLinked || v.stale)
                continue;
            v.stale = true;
            v.staleLine = c.line;
            v.staleWhy = "the yielding call '" + c.callee + "'";
        }
    }

    void markStaleAfterUnlink(State& st, const Call& c)
    {
        for (auto& [name, v] : st) {
            if (!v.isLinked || v.stale || v.receiver.empty() ||
                v.receiver != c.receiver)
                continue;
            v.stale = true;
            v.staleLine = c.line;
            v.staleWhy =
                "'" + c.receiver + "." + c.callee + "()' unlinked it";
        }
    }

    /**
     * Scan a token range left-to-right for variable uses and call
     * events, in program order: a use before a yield is fine, after
     * it is not. `skipTok` excludes the assignment target itself.
     */
    void scanUses(size_t begin, size_t end, State& st,
                  size_t skipTok = SIZE_MAX)
    {
        for (size_t i = begin; i < end; ++i) {
            auto cit = callAt_.find(i);
            if (cit != callAt_.end()) {
                const Call& c = *cit->second;
                if (callYields(c.callee))
                    markStaleAfterYield(st, c);
                else if (kUnlinkers.count(c.callee))
                    markStaleAfterUnlink(st, c);
                continue;
            }
            if (i == skipTok || toks_[i].kind != Tok::Ident)
                continue;
            auto vit = st.find(text(i));
            if (vit == st.end() || !isVarUse(i, vit->first))
                continue;
            VarState& v = vit->second;
            if (v.isStatus)
                v.read = true;
            if (v.isLinked && v.stale && !v.reported) {
                v.reported = true;
                emit(toks_[i].line, "linked-escape-v2",
                     "raw pointer '" + vit->first + "' from '" +
                         v.origin + "' (line " +
                         std::to_string(v.declLine) +
                         ") is used after " + v.staleWhy + " (line " +
                         std::to_string(v.staleLine) +
                         "); the translation may have been remapped");
            }
        }
    }

    void killScope(State& st, int depth)
    {
        for (auto it = st.begin(); it != st.end();) {
            VarState& v = it->second;
            if (v.depth < depth) {
                ++it;
                continue;
            }
            if (v.isStatus && !v.read && !v.reported) {
                emit(v.declLine, "must-check-status",
                     "status result of '" + v.origin +
                         "' is never inspected before '" + it->first +
                         "' goes out of scope");
            }
            it = st.erase(it);
        }
    }

    // ---- statement walkers ---------------------------------------------

    /** Calls in [begin, end), in token order. */
    std::vector<const Call*> callsIn(size_t begin, size_t end) const
    {
        std::vector<const Call*> out;
        for (const Call& c : f_.calls)
            if (c.tokIndex >= begin && c.tokIndex < end)
                out.push_back(&c);
        return out;
    }

    /**
     * Is token i inside a brace group that opens after `begin`? Calls
     * under such braces belong to a lambda (or init-list) inside the
     * statement, not to the statement's own initializer expression.
     */
    bool braceNested(size_t begin, size_t i) const
    {
        int depth = 0;
        for (size_t k = begin; k < i; ++k) {
            if (text(k) == "{")
                ++depth;
            else if (text(k) == "}")
                --depth;
        }
        return depth > 0;
    }

    /** First producer call in a range, if any (top brace level only). */
    const Call* producerIn(size_t begin, size_t end, bool& isStatus,
                           bool& isLinked) const
    {
        for (const Call* c : callsIn(begin, end)) {
            if (braceNested(begin, c->tokIndex))
                continue;
            if (g_.mustCheck.count(c->callee)) {
                isStatus = true;
                return c;
            }
            if (g_.returnsLinked.count(c->callee)) {
                isLinked = true;
                return c;
            }
        }
        return nullptr;
    }

    bool rangeHasIdent(size_t begin, size_t end,
                       const std::string& id) const
    {
        for (size_t i = begin; i < end; ++i)
            if (toks_[i].kind == Tok::Ident && text(i) == id)
                return true;
        return false;
    }

    /** Top-level `=` (pure assignment token) in a statement range. */
    size_t findAssign(size_t begin, size_t end) const
    {
        int depth = 0;
        for (size_t i = begin; i < end; ++i) {
            const std::string& t = text(i);
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            else if (t == "=" && depth == 0)
                return i;
        }
        return end;
    }

    void trackVar(State& st, const std::string& name, const Call& c,
                  bool isStatus, int depth)
    {
        VarState v;
        v.isStatus = isStatus;
        v.isLinked = !isStatus;
        v.origin = c.callee;
        v.receiver = c.receiver;
        v.declLine = c.line;
        v.depth = depth;
        st[name] = v;
    }

    /**
     * Interpret brace groups embedded in a statement (lambda bodies)
     * as statement sequences with a fresh state: a must-check result
     * dropped inside a lambda is still a drop, while interactions with
     * captured outer locals stay with the enclosing statement's
     * conservative use scan.
     */
    void analyzeEmbeddedBlocks(size_t begin, size_t end, State& st,
                               int depth)
    {
        for (size_t i = begin; i < end; ++i) {
            if (text(i) != "{")
                continue;
            size_t close = matchGroup(i, end);
            // Seed with the enclosing state so captured locals are
            // recognized; lambda-local declarations die at the brace.
            State local = st;
            analyzeSeq(i + 1, close, local, depth + 1);
            killScope(local, depth + 1);
            // Merge captured-variable effects back, optimistically: a
            // read in the lambda counts as an inspection, and a var
            // first assigned in the lambda (the `launch([&]{ st =
            // ... })` idiom) stays tracked for the enclosing scope.
            for (auto& [name, v] : local) {
                auto it = st.find(name);
                if (it == st.end()) {
                    st[name] = v;
                    continue;
                }
                it->second.read = it->second.read || v.read;
                it->second.reported = it->second.reported || v.reported;
                if (v.stale && !it->second.stale) {
                    it->second.stale = true;
                    it->second.staleLine = v.staleLine;
                    it->second.staleWhy = v.staleWhy;
                }
            }
            i = close;
        }
    }

    /** One generic (non-control-flow) statement. Returns past `;`. */
    size_t analyzeStmt(size_t pos, size_t bound, State& st, int depth)
    {
        size_t end = stmtEnd(pos, bound);
        size_t eq = findAssign(pos, end);

        bool isStatus = false, isLinked = false;
        const Call* prod =
            eq < end ? producerIn(eq + 1, end, isStatus, isLinked)
                     : nullptr;

        // Shape of the left-hand side, top level only.
        size_t lhsIdents = 0, targetTok = SIZE_MAX;
        bool lhsMember = false, lhsBrackets = false, lhsIoStatus = false;
        {
            int d = 0;
            for (size_t i = pos; i < eq; ++i) {
                const std::string& t = text(i);
                if (t == "(" || t == "[" || t == "{") {
                    ++d;
                    if (t == "[")
                        lhsBrackets = true;
                    continue;
                }
                if (t == ")" || t == "]" || t == "}") {
                    --d;
                    continue;
                }
                if (d != 0)
                    continue;
                if (t == "." || t == "->")
                    lhsMember = true;
                if (toks_[i].kind == Tok::Ident) {
                    ++lhsIdents;
                    targetTok = i;
                    if (t == "IoStatus")
                        lhsIoStatus = true;
                }
            }
        }

        // A call stored into an IoStatus-typed local is a status
        // producer even without an AP_MUST_CHECK annotation in scope.
        if (eq < end && !prod && lhsIoStatus && !lhsMember) {
            for (const Call* c : callsIn(eq + 1, end)) {
                if (braceNested(eq + 1, c->tokIndex))
                    continue;
                prod = c;
                isStatus = true;
                break;
            }
        }

        // Uses and call events in program order. The assignment
        // target's own token is not a read of the old value.
        bool plainTarget = eq < end && !lhsMember && !lhsBrackets &&
                           targetTok != SIZE_MAX;
        scanUses(pos, end, st,
                 plainTarget && lhsIdents >= 1 ? targetTok : SIZE_MAX);

        if (eq < end && plainTarget) {
            const std::string name = text(targetTok);
            if (lhsIdents == 1) {
                // Assignment to an existing local.
                auto it = st.find(name);
                if (it != st.end() && it->second.isStatus &&
                    !it->second.read && !it->second.reported) {
                    emit(toks_[targetTok].line, "must-check-status",
                         "status result of '" + it->second.origin +
                             "' (line " +
                             std::to_string(it->second.declLine) +
                             ") is overwritten before being "
                             "inspected");
                }
                if (prod) {
                    int d = it != st.end() ? it->second.depth : 0;
                    trackVar(st, name, *prod, isStatus, d);
                } else if (it != st.end()) {
                    st.erase(it);
                }
            } else if (prod) {
                // Declaration with initializer.
                trackVar(st, name, *prod, isStatus, depth);
            }
        } else if (eq < end && lhsMember && prod == nullptr) {
            // Member store: a live linked local leaking into object
            // state. (A direct linked call on the RHS is v1's case.)
            for (const auto& [name, v] : st) {
                if (!v.isLinked || v.stale)
                    continue;
                if (rangeHasIdent(eq + 1, end, name)) {
                    emit(toks_[pos].line, "linked-escape-v2",
                         "storing raw pointer '" + name + "' (from '" +
                             v.origin + "', line " +
                             std::to_string(v.declLine) +
                             ") into object state lets it outlive "
                             "the link");
                }
            }
        } else if (eq >= end) {
            // No assignment: a must-check result used as a bare
            // statement (optionally behind a (void) cast) is dropped.
            size_t s = pos;
            bool voided = false;
            if (s + 2 < end && text(s) == "(" && text(s + 1) == "void" &&
                text(s + 2) == ")") {
                s += 3;
                voided = true;
            }
            for (const Call* c : callsIn(pos, end)) {
                if (!g_.mustCheck.count(c->callee))
                    continue;
                if (chainStart(toks_, c->tokIndex) != s)
                    break; // nested in another expression: consumed
                emit(c->line, "must-check-status",
                     "result of '" + c->callee +
                         "' is AP_MUST_CHECK but is " +
                         (voided ? "cast to void" : "discarded") +
                         " at the call site");
                break;
            }
        }
        analyzeEmbeddedBlocks(pos, end, st, depth);
        return end < bound ? end + 1 : bound;
    }

    /** Condition / loop-header range: everything counts as a read. */
    void scanCondition(size_t begin, size_t end, State& st)
    {
        scanUses(begin, end, st);
        // `while ((st = poll()) != Ok)`: the fresh value is consumed
        // by the comparison immediately, so track it already-read.
        size_t eq = findAssignAnyDepth(begin, end);
        if (eq == end)
            return;
        bool isStatus = false, isLinked = false;
        const Call* prod = producerIn(eq + 1, end, isStatus, isLinked);
        if (!prod || eq == begin ||
            toks_[eq - 1].kind != Tok::Ident)
            return;
        trackVar(st, text(eq - 1), *prod, isStatus, 0);
        st[text(eq - 1)].read = true;
    }

    size_t findAssignAnyDepth(size_t begin, size_t end) const
    {
        for (size_t i = begin; i < end; ++i)
            if (text(i) == "=")
                return i;
        return end;
    }

    /** Dispatch exactly one statement or construct. */
    size_t analyzeOne(size_t pos, size_t bound, State& st, int depth)
    {
        if (pos >= bound)
            return bound;
        const std::string& t = text(pos);
        if (t == ";")
            return pos + 1;
        if (t == "{") {
            size_t close = matchGroup(pos, bound);
            analyzeSeq(pos + 1, close, st, depth + 1);
            killScope(st, depth + 1);
            return close + 1;
        }
        if (t == "if")
            return analyzeIf(pos, bound, st, depth);
        if (t == "while" || t == "for" || t == "switch" || t == "do")
            return analyzeLoop(pos, bound, st, depth);
        if (t == "return") {
            size_t end = stmtEnd(pos, bound);
            handleReturn(pos + 1, end, st);
            analyzeEmbeddedBlocks(pos + 1, end, st, depth);
            return end < bound ? end + 1 : bound;
        }
        if (t == "case" || t == "default") {
            size_t i = pos;
            while (i < bound && text(i) != ":")
                ++i;
            return i < bound ? i + 1 : bound;
        }
        if (t == "else") // dangling else after a non-if statement
            return pos + 1;
        return analyzeStmt(pos, bound, st, depth);
    }

    void analyzeSeq(size_t pos, size_t end, State& st, int depth)
    {
        while (pos < end) {
            if (text(pos) == "}") {
                ++pos;
                continue;
            }
            pos = analyzeOne(pos, end, st, depth);
        }
    }

    size_t analyzeIf(size_t pos, size_t bound, State& st, int depth)
    {
        size_t open = pos + 1;
        if (text(open) == "constexpr")
            ++open;
        if (open >= bound || text(open) != "(")
            return pos + 1;
        size_t close = matchGroup(open, bound);
        scanCondition(open + 1, close, st);
        size_t p = close + 1;

        State thenSt = st;
        p = analyzeOne(p, bound, thenSt, depth);

        if (p < bound && text(p) == "else") {
            State elseSt = st;
            p = analyzeOne(p + 1, bound, elseSt, depth);
            st = join(thenSt, elseSt);
        } else {
            st = join(thenSt, st);
        }
        return p;
    }

    /**
     * Loop widening: evaluate the body against the entry state, join
     * to model "already iterated", evaluate once more, then join with
     * the zero-iteration path. Duplicate diagnostics from the second
     * pass are absorbed by the emission dedupe.
     */
    size_t analyzeLoop(size_t pos, size_t bound, State& st, int depth)
    {
        const bool isDo = text(pos) == "do";
        size_t p = pos + 1;
        if (!isDo) {
            if (p >= bound || text(p) != "(")
                return pos + 1;
            size_t close = matchGroup(p, bound);
            scanCondition(p + 1, close, st);
            p = close + 1;
        }

        size_t bodyBegin = p, bodyEnd = p;
        State s1 = st;
        bodyEnd = analyzeOne(bodyBegin, bound, s1, depth);

        State widened = join(st, s1);
        State s2 = widened;
        analyzeOne(bodyBegin, bound, s2, depth);

        st = isDo ? join(s1, s2) : join(st, s2);
        p = bodyEnd;

        if (isDo && p < bound && text(p) == "while") {
            size_t open = p + 1;
            if (open < bound && text(open) == "(") {
                size_t close = matchGroup(open, bound);
                scanCondition(open + 1, close, st);
                p = close + 1;
            }
            if (p < bound && text(p) == ";")
                ++p;
        }
        return p;
    }

    void handleReturn(size_t begin, size_t end, State& st)
    {
        // Returning a linked local hands the caller a pointer that
        // dies with this frame's link — unless this function is
        // itself annotated as vending linked pointers.
        bool wrapper = g_.returnsLinked.count(f_.name) > 0;
        int paren = 0;
        for (size_t i = begin; i < end; ++i) {
            const std::string& tx = text(i);
            if (tx == "(" || tx == "[")
                ++paren;
            else if (tx == ")" || tx == "]")
                --paren;
            if (toks_[i].kind != Tok::Ident)
                continue;
            auto it = st.find(tx);
            if (it == st.end() || !isVarUse(i, it->first))
                continue;
            VarState& v = it->second;
            // Only the returned value itself escapes; a linked var
            // passed as a call argument (paren > 0) stays in-frame.
            if (v.isLinked && !wrapper && !v.reported && paren == 0) {
                v.reported = true;
                emit(toks_[i].line, "linked-escape-v2",
                     "returning raw pointer '" + it->first +
                         "' (from '" + v.origin + "', line " +
                         std::to_string(v.declLine) +
                         ") lets it outlive the linking scope");
            }
        }
        scanUses(begin, end, st);
    }
};

} // namespace

void
runDataflow(const FileModel& m, const GlobalModel& g,
            const Summaries* sums, std::vector<Finding>& findings)
{
    for (const Func& f : m.funcs) {
        if (!f.hasBody)
            continue;
        FlowAnalyzer(m, f, g, sums, findings).run();
    }
}

} // namespace ap::lint
