/**
 * @file
 * Whole-program layer over the per-file parser output: a call graph
 * keyed by unqualified function name, bottom-up contract summaries
 * (effective AP_YIELDS / AP_LOCKSTEP / AP_LEADER_ONLY / AP_ACQUIRES
 * inferred from callees by worklist fixpoint), and the
 * `contract-propagation` rule pass that diagnoses call sites whose
 * declared contract contradicts the inferred summary — including the
 * interprocedural lock-order closure cross-checked against the
 * canonical lock-order directive (mirrored by ap::kLockOrder and
 * simcheck's runtime graph).
 *
 * Soundness limits are documented in DESIGN.md: functions are merged
 * across overloads and classes by unqualified name, calls through
 * function pointers / std::function are invisible, and macro bodies
 * are never expanded.
 */

#ifndef APLINT_CALLGRAPH_HH
#define APLINT_CALLGRAPH_HH

#include "rules.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ap::lint {

/** One function node, merged across files by unqualified name. */
struct CgNode
{
    std::string name;
    std::set<std::string> callees; ///< names called from any body
    bool hasBody = false;
    /** Body contains the ballot+ffs leader-election idiom. */
    bool elects = false;
};

struct CallGraph
{
    std::map<std::string, CgNode> nodes;
    /** Reverse edges: callee name -> caller names. */
    std::map<std::string, std::set<std::string>> callers;
};

/**
 * Inferred (effective) contract summaries. Declared annotations are
 * included, so `yields.count(f)` answers "may f reach a yield point",
 * not "is f textually annotated". The `*Witness` maps hold a short
 * callee chain ("a -> b -> block") explaining each inference, for
 * diagnostics.
 */
struct Summaries
{
    std::set<std::string> yields;
    std::set<std::string> lockstep;
    std::set<std::string> leaderOnly;
    /** Transitive closure of AP_ACQUIRES over the call graph. */
    std::map<std::string, std::set<std::string>> acquires;
    std::map<std::string, std::string> yieldsWitness;
    std::map<std::string, std::string> lockstepWitness;
    std::map<std::string, std::string> leaderOnlyWitness;
};

/** Build the merged call graph from every parsed file. */
CallGraph buildCallGraph(const std::vector<FileModel>& files);

/** Bottom-up worklist fixpoint over the call graph. */
Summaries propagate(const CallGraph& cg, const GlobalModel& g);

/**
 * The contract-propagation rule: per-file pass diagnosing contracts
 * contradicted by inferred summaries (declared-annotation violations
 * stay with the v1 rules, so no call site is reported twice).
 */
void runPropagation(const FileModel& m, const GlobalModel& g,
                    const CallGraph& cg, const Summaries& sums,
                    std::vector<Finding>& findings);

} // namespace ap::lint

#endif // APLINT_CALLGRAPH_HH
