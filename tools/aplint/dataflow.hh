/**
 * @file
 * Per-function flow-sensitive dataflow over the token stream: a small
 * abstract interpreter that walks statements in order, forks state at
 * branches (joining the arms), and widens loops by evaluating the body
 * twice against the joined entry state. It powers two rule families:
 *
 *   must-check-status  A result of an AP_MUST_CHECK call (or any call
 *                      stored into an `IoStatus`-typed local) that is
 *                      discarded at the call site, overwritten before
 *                      being read, or goes out of scope uninspected on
 *                      some path. Any read — a condition, comparison,
 *                      argument, return, or member access — counts as
 *                      an inspection.
 *
 *   linked-escape-v2   A local raw pointer initialized from an
 *                      AP_RETURNS_LINKED / AP_REQUIRES_LINKED call
 *                      that is returned, stored into a field/global,
 *                      or used after an AP_YIELDS call (declared or
 *                      inferred, see callgraph.hh) or after the source
 *                      translation is unlinked. Complements the v1
 *                      linked-escape rule, which only sees escapes of
 *                      the call expression itself.
 *
 * Lattices are deliberately tiny: status locals carry one bit (read /
 * unread, joined with AND so "inspected on every path" is required);
 * linked locals carry live / stale-with-witness (joined with OR).
 * Lambda bodies inside a statement are scanned for uses (a capture
 * counts as a read) but not interpreted statement-by-statement.
 */

#ifndef APLINT_DATAFLOW_HH
#define APLINT_DATAFLOW_HH

#include "callgraph.hh"
#include "rules.hh"

#include <vector>

namespace ap::lint {

/**
 * Run both dataflow rule families over one file. `sums` may be null
 * (whole-program passes disabled); declared annotations alone then
 * drive yield invalidation.
 */
void runDataflow(const FileModel& m, const GlobalModel& g,
                 const Summaries* sums,
                 std::vector<Finding>& findings);

} // namespace ap::lint

#endif // APLINT_DATAFLOW_HH
