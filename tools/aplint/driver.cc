#include "driver.hh"

#include "callgraph.hh"
#include "dataflow.hh"
#include "typestate.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace fs = std::filesystem;

namespace ap::lint {

namespace {

bool
isSourceFile(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

bool
excluded(const std::string& rel, const Options& opts)
{
    for (const std::string& e : opts.excludes)
        if (rel.find(e) != std::string::npos)
            return true;
    return false;
}

std::string
relativeTo(const fs::path& p, const fs::path& root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    std::string s = (ec || rel.empty() ? p : rel).generic_string();
    return s;
}

std::vector<std::string>
collectFiles(const Options& opts)
{
    std::vector<std::string> files;
    const fs::path root = opts.root;
    for (const std::string& p : opts.paths) {
        fs::path full = fs::path(p).is_absolute() ? fs::path(p)
                                                  : root / p;
        std::error_code ec;
        if (fs::is_regular_file(full, ec)) {
            files.push_back(full.generic_string());
            continue;
        }
        if (!fs::is_directory(full, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(full, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (it->is_regular_file(ec) && isSourceFile(it->path()))
                files.push_back(it->path().generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Mark findings covered by a (well-formed) waiver in their file, and
 * record which waivers actually matched something so stale ones can be
 * reported (the unused-waiver diagnostic).
 */
void
applyWaivers(std::vector<Finding>& findings,
             const std::map<std::string, const FileModel*>& byPath,
             std::map<const Waiver*, bool>& used)
{
    for (Finding& f : findings) {
        if (f.rule == "waiver-syntax" || f.rule == "unused-waiver")
            continue; // never waivable
        auto it = byPath.find(f.file);
        if (it == byPath.end())
            continue;
        for (const Waiver& w : it->second->waivers) {
            if (w.malformed || w.rule != f.rule)
                continue;
            if (w.fileScope || w.line == f.line ||
                w.line == f.line - 1) {
                f.waived = true;
                used[&w] = true;
                break;
            }
        }
    }
}

/**
 * Minimal reader for the committed baseline: any JSON-ish file listing
 * objects with "file", "line", and "rule" keys. Kept hand-rolled so
 * aplint stays dependency-free; unknown keys are ignored and malformed
 * entries are skipped.
 */
std::set<std::tuple<std::string, int, std::string>>
loadBaseline(const std::string& path)
{
    std::set<std::tuple<std::string, int, std::string>> entries;
    std::string text = readFile(path);

    auto stringAfter = [&](size_t from, size_t bound,
                           const std::string& key) -> std::string {
        size_t k = text.find("\"" + key + "\"", from);
        if (k == std::string::npos || k >= bound)
            return "";
        size_t q1 = text.find('"', k + key.size() + 2);
        if (q1 == std::string::npos || q1 >= bound)
            return "";
        size_t q2 = text.find('"', q1 + 1);
        if (q2 == std::string::npos || q2 >= bound)
            return "";
        return text.substr(q1 + 1, q2 - q1 - 1);
    };
    auto intAfter = [&](size_t from, size_t bound,
                        const std::string& key) -> int {
        size_t k = text.find("\"" + key + "\"", from);
        if (k == std::string::npos || k >= bound)
            return -1;
        size_t i = k + key.size() + 2;
        while (i < bound && !std::isdigit(static_cast<unsigned char>(
                                text[i])))
            ++i;
        int v = 0;
        bool any = false;
        while (i < bound &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
            v = v * 10 + (text[i++] - '0');
            any = true;
        }
        return any ? v : -1;
    };

    size_t pos = text.find('[');
    if (pos == std::string::npos)
        return entries;
    while (true) {
        size_t open = text.find('{', pos);
        if (open == std::string::npos)
            break;
        size_t close = text.find('}', open);
        if (close == std::string::npos)
            break;
        std::string file = stringAfter(open, close, "file");
        std::string rule = stringAfter(open, close, "rule");
        int line = intAfter(open, close, "line");
        if (!file.empty() && !rule.empty() && line >= 0)
            entries.insert({file, line, rule});
        pos = close + 1;
    }
    return entries;
}

/**
 * Process-wide parse cache: repeated analyze() calls in one process
 * (the unit-test suite runs dozens) re-tokenize only files whose
 * content changed. Keyed by on-disk path; the cached model is copied
 * out with its relative path patched, since findings carry m.path.
 */
struct CacheEntry
{
    std::string content;
    FileModel model;
};
std::map<std::string, CacheEntry>&
parseCache()
{
    static std::map<std::string, CacheEntry> cache;
    return cache;
}

FileModel
parseCached(const std::string& path, const std::string& rel,
            Report& report)
{
    std::string content = readFile(path);
    auto& cache = parseCache();
    auto it = cache.find(path);
    if (it != cache.end() && it->second.content == content) {
        ++report.cacheHits;
        FileModel copy = it->second.model;
        copy.path = rel;
        return copy;
    }
    FileModel m = parseFile(rel, content);
    cache[path] = {std::move(content), m};
    return m;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Report
analyze(const Options& opts)
{
    Report report;
    const auto t0 = std::chrono::steady_clock::now();
    const fs::path root = opts.root;

    std::vector<FileModel> models;
    for (const std::string& path : collectFiles(opts)) {
        std::string rel = relativeTo(path, root);
        if (excluded(rel, opts))
            continue;
        models.push_back(parseCached(path, rel, report));
        ++report.filesScanned;
    }

    GlobalModel g = buildGlobal(models, report.findings);
    std::map<std::string, const FileModel*> byPath;
    for (const FileModel& m : models)
        byPath[m.path] = &m;

    CallGraph cg;
    Summaries sums;
    TypestateSummaries tsums;
    if (opts.wpa) {
        cg = buildCallGraph(models);
        sums = propagate(cg, g);
        tsums = computeRefSummaries(models, g, cg);
    }
    for (const FileModel& m : models) {
        const auto f0 = std::chrono::steady_clock::now();
        runRules(m, g, report.findings);
        if (opts.wpa)
            runPropagation(m, g, cg, sums, report.findings);
        runDataflow(m, g, opts.wpa ? &sums : nullptr,
                    report.findings);
        runTypestate(m, g, opts.wpa ? &tsums : nullptr,
                     report.findings);
        if (opts.stats) {
            std::chrono::duration<double, std::milli> d =
                std::chrono::steady_clock::now() - f0;
            report.fileMillis.emplace_back(m.path, d.count());
        }
    }

    std::map<const Waiver*, bool> used;
    applyWaivers(report.findings, byPath, used);

    // Stale suppressions: a well-formed waiver for a known rule that
    // matched nothing. Advisory by default, gating under --strict.
    for (const FileModel& m : models) {
        for (const Waiver& w : m.waivers) {
            if (w.malformed || !knownRules().count(w.rule) ||
                used.count(&w))
                continue;
            Finding f{m.path, w.line, "unused-waiver",
                      "waiver for '" + w.rule +
                          "' no longer matches any finding; remove "
                          "the stale suppression",
                      false};
            f.note = !opts.strictWaivers;
            report.findings.push_back(std::move(f));
        }
    }

    if (!opts.baselinePath.empty()) {
        auto baseline = loadBaseline(opts.baselinePath);
        if (!baseline.empty()) {
            for (Finding& f : report.findings) {
                if (f.waived || f.note)
                    continue;
                if (baseline.count({f.file, f.line, f.rule}))
                    f.baselined = true;
            }
        }
    }

    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const Finding& a, const Finding& b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    std::chrono::duration<double, std::milli> total =
        std::chrono::steady_clock::now() - t0;
    report.totalMillis = total.count();
    return report;
}

std::string
toText(const Report& r)
{
    std::ostringstream os;
    int waived = 0;
    for (const Finding& f : r.findings) {
        if (f.waived) {
            ++waived;
            continue;
        }
        if (f.note) {
            os << "note: " << f.file << ":" << f.line << ": [" << f.rule
               << "] " << f.message << "\n";
            continue;
        }
        if (f.baselined)
            continue;
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    }
    os << "aplint: " << r.unwaivedCount() << " finding(s), " << waived
       << " waived, " << r.baselinedCount() << " baselined, "
       << r.noteCount() << " note(s), " << r.filesScanned
       << " file(s) scanned\n";
    return os.str();
}

std::string
toJson(const Report& r)
{
    std::ostringstream os;
    os << "{\n  \"filesScanned\": " << r.filesScanned << ",\n";
    os << "  \"unwaived\": " << r.unwaivedCount() << ",\n";
    os << "  \"baselined\": " << r.baselinedCount() << ",\n";
    os << "  \"notes\": " << r.noteCount() << ",\n";
    os << "  \"findings\": [";
    bool first = true;
    for (const Finding& f : r.findings) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line << ", \"rule\": \""
           << jsonEscape(f.rule) << "\", \"waived\": "
           << (f.waived ? "true" : "false") << ", \"note\": "
           << (f.note ? "true" : "false") << ", \"baselined\": "
           << (f.baselined ? "true" : "false") << ", \"message\": \""
           << jsonEscape(f.message) << "\"}";
    }
    os << (first ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

std::string
toBaseline(const Report& r)
{
    std::ostringstream os;
    os << "{\n  \"findings\": [";
    bool first = true;
    for (const Finding& f : r.findings) {
        if (f.waived || f.note)
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line << ", \"rule\": \""
           << jsonEscape(f.rule) << "\"}";
    }
    os << (first ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

std::string
toSarif(const Report& r)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-"
          "tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
       << "  \"runs\": [\n    {\n"
       << "      \"tool\": {\n        \"driver\": {\n"
       << "          \"name\": \"aplint\",\n"
       << "          \"informationUri\": \"docs/ANALYSIS.md\",\n"
       << "          \"rules\": [";
    bool first = true;
    for (const std::string& rule : knownRules()) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "            {\"id\": \"" << jsonEscape(rule) << "\"}";
    }
    os << (first ? "]" : "\n          ]") << "\n        }\n      },\n"
       << "      \"results\": [";
    first = true;
    for (const Finding& f : r.findings) {
        if (f.waived || f.baselined)
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "        {\"ruleId\": \"" << jsonEscape(f.rule)
           << "\", \"level\": \"" << (f.note ? "note" : "error")
           << "\", \"message\": {\"text\": \"" << jsonEscape(f.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(f.file)
           << "\"}, \"region\": {\"startLine\": " << f.line
           << "}}}]}";
    }
    os << (first ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
    return os.str();
}

std::string
toStats(const Report& r)
{
    std::ostringstream os;
    os << "aplint stats: " << r.filesScanned << " file(s), "
       << r.cacheHits << " parse-cache hit(s), "
       << static_cast<long>(r.totalMillis) << " ms total\n";
    // slowest files first, capped so the summary stays readable
    std::vector<std::pair<std::string, double>> rows = r.fileMillis;
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                         return a.second > b.second;
                     });
    size_t n = std::min<size_t>(rows.size(), 15);
    for (size_t i = 0; i < n; ++i)
        os << "  " << rows[i].first << ": "
           << static_cast<long>(rows[i].second * 1000) / 1000.0
           << " ms\n";
    return os.str();
}

} // namespace ap::lint
