#include "driver.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace fs = std::filesystem;

namespace ap::lint {

namespace {

bool
isSourceFile(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

bool
excluded(const std::string& rel, const Options& opts)
{
    for (const std::string& e : opts.excludes)
        if (rel.find(e) != std::string::npos)
            return true;
    return false;
}

std::string
relativeTo(const fs::path& p, const fs::path& root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    std::string s = (ec || rel.empty() ? p : rel).generic_string();
    return s;
}

std::vector<std::string>
collectFiles(const Options& opts)
{
    std::vector<std::string> files;
    const fs::path root = opts.root;
    for (const std::string& p : opts.paths) {
        fs::path full = fs::path(p).is_absolute() ? fs::path(p)
                                                  : root / p;
        std::error_code ec;
        if (fs::is_regular_file(full, ec)) {
            files.push_back(full.generic_string());
            continue;
        }
        if (!fs::is_directory(full, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(full, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (it->is_regular_file(ec) && isSourceFile(it->path()))
                files.push_back(it->path().generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Mark findings covered by a (well-formed) waiver in their file. */
void
applyWaivers(std::vector<Finding>& findings,
             const std::map<std::string, const FileModel*>& byPath)
{
    for (Finding& f : findings) {
        if (f.rule == "waiver-syntax")
            continue; // never waivable
        auto it = byPath.find(f.file);
        if (it == byPath.end())
            continue;
        for (const Waiver& w : it->second->waivers) {
            if (w.malformed || w.rule != f.rule)
                continue;
            if (w.fileScope || w.line == f.line ||
                w.line == f.line - 1) {
                f.waived = true;
                break;
            }
        }
    }
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Report
analyze(const Options& opts)
{
    Report report;
    const fs::path root = opts.root;

    std::vector<FileModel> models;
    for (const std::string& path : collectFiles(opts)) {
        std::string rel = relativeTo(path, root);
        if (excluded(rel, opts))
            continue;
        models.push_back(parseFile(rel, readFile(path)));
        ++report.filesScanned;
    }

    GlobalModel g = buildGlobal(models, report.findings);
    std::map<std::string, const FileModel*> byPath;
    for (const FileModel& m : models)
        byPath[m.path] = &m;
    for (const FileModel& m : models)
        runRules(m, g, report.findings);

    applyWaivers(report.findings, byPath);
    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const Finding& a, const Finding& b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    return report;
}

std::string
toText(const Report& r)
{
    std::ostringstream os;
    int waived = 0;
    for (const Finding& f : r.findings) {
        if (f.waived) {
            ++waived;
            continue;
        }
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    }
    os << "aplint: " << r.unwaivedCount() << " finding(s), " << waived
       << " waived, " << r.filesScanned << " file(s) scanned\n";
    return os.str();
}

std::string
toJson(const Report& r)
{
    std::ostringstream os;
    os << "{\n  \"filesScanned\": " << r.filesScanned << ",\n";
    os << "  \"unwaived\": " << r.unwaivedCount() << ",\n";
    os << "  \"findings\": [";
    bool first = true;
    for (const Finding& f : r.findings) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line << ", \"rule\": \""
           << jsonEscape(f.rule) << "\", \"waived\": "
           << (f.waived ? "true" : "false") << ", \"message\": \""
           << jsonEscape(f.message) << "\"}";
    }
    os << (first ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

} // namespace ap::lint
