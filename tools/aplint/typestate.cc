#include "typestate.hh"

#include <algorithm>
#include <deque>

namespace ap::lint {

namespace {

constexpr int kInf = Interval::kInf;

int
satAdd(int a, int b)
{
    if (a >= kInf || b >= kInf)
        return kInf;
    if (a <= -kInf || b <= -kInf)
        return -kInf;
    long s = static_cast<long>(a) + b;
    if (s >= kInf)
        return kInf;
    if (s <= -kInf)
        return -kInf;
    return static_cast<int>(s);
}

/** Keywords that look like calls but are not. */
bool
keywordIsh(const std::string& s)
{
    static const std::set<std::string> kw = {
        "if",     "for",     "while",  "switch",        "return",
        "do",     "else",    "case",   "goto",          "sizeof",
        "alignof", "decltype", "catch", "throw",        "new",
        "delete", "static_assert", "constexpr", "noexcept", "alignas",
    };
    return kw.count(s) > 0;
}

/** Strip all spaces from an edge string ("A -> B" -> "A->B"). */
std::string
normEdge(const std::string& s)
{
    std::string out;
    for (char c : s)
        if (c != ' ' && c != '\t')
            out += c;
    return out;
}

bool
wellFormedEdge(const std::string& e)
{
    size_t arrow = e.find("->");
    if (arrow == std::string::npos || arrow == 0 ||
        arrow + 2 >= e.size())
        return false;
    // one arrow only, identifier-ish sides
    if (e.find("->", arrow + 2) != std::string::npos)
        return false;
    auto identish = [](const std::string& s) {
        for (char c : s)
            if (!std::isalnum(static_cast<unsigned char>(c)) &&
                c != '_')
                return false;
        return !s.empty();
    };
    return identish(e.substr(0, arrow)) && identish(e.substr(arrow + 2));
}

// ---- abstract state -----------------------------------------------------

struct AbsState
{
    std::map<std::string, Interval> net; ///< class -> net refs
    /** result-variable bindings: local -> class acquired into it. */
    std::map<std::string, std::string> pending;
    /** class -> inferred-effect witness chain for diagnostics. */
    std::map<std::string, std::string> via;
    bool dead = false;
};

Interval
getNet(const AbsState& st, const std::string& cls)
{
    auto it = st.net.find(cls);
    return it == st.net.end() ? Interval{} : it->second;
}

void
addNet(AbsState& st, const std::string& cls, Interval iv)
{
    st.net[cls] = addIv(getNet(st, cls), iv);
}

AbsState
joinState(const AbsState& a, const AbsState& b)
{
    if (a.dead)
        return b;
    if (b.dead)
        return a;
    AbsState out;
    std::set<std::string> keys;
    for (const auto& [k, v] : a.net)
        keys.insert(k);
    for (const auto& [k, v] : b.net)
        keys.insert(k);
    for (const std::string& k : keys)
        out.net[k] = joinIv(getNet(a, k), getNet(b, k));
    for (const auto& [var, cls] : a.pending) {
        auto it = b.pending.find(var);
        if (it != b.pending.end() && it->second == cls)
            out.pending[var] = cls;
    }
    out.via = a.via;
    for (const auto& [k, v] : b.via)
        out.via.emplace(k, v);
    return out;
}

// ---- the path-sensitive walker ------------------------------------------

/**
 * Interprets one function body over its token range. Two-pass loop
 * widening; `return` snapshots the state (pass 2 only, so a loop's
 * first, narrower pass never double-reports) and kills the path.
 */
class RefWalker
{
  public:
    struct Exit
    {
        AbsState st;
        int line;
    };

    RefWalker(const FileModel& m_, const Func& f_, const GlobalModel& g_,
              const TypestateSummaries* sums_)
        : m(m_), f(f_), g(g_), sums(sums_), toks(m_.lx.tokens)
    {
        auto a = g.acquiresRef.find(f.name);
        if (a != g.acquiresRef.end())
            ownClass = a->second;
        else {
            auto r = g.releasesRef.find(f.name);
            if (r != g.releasesRef.end())
                ownClass = r->second;
        }
    }

    void run()
    {
        if (!f.hasBody || f.bodyBegin >= toks.size())
            return;
        AbsState st;
        size_t i = f.bodyBegin;
        walkBlock(i, st);
        if (!st.dead) {
            int line = f.bodyEnd > 0 && f.bodyEnd - 1 < toks.size()
                           ? toks[f.bodyEnd - 1].line
                           : f.line;
            exits.push_back({st, line});
        }
    }

    std::vector<Exit> exits;
    /** Classes with at least one tracked event in the body. */
    std::set<std::string> events;

  private:
    const FileModel& m;
    const Func& f;
    const GlobalModel& g;
    const TypestateSummaries* sums;
    const std::vector<Token>& toks;
    std::string ownClass; ///< declared class for raw-CAS attribution

    int suppress = 0; ///< >0 during a loop's first (widening) pass

    struct LoopCtx
    {
        std::vector<AbsState> breaks;
        std::vector<AbsState> continues;
    };
    std::vector<LoopCtx> loops;
    /** 'L' loop / 'S' switch, innermost last; `break` binds to back. */
    std::vector<char> breakTargets;

    bool atTok(size_t i, const char* s) const
    {
        return i < toks.size() && toks[i].text == s;
    }
    bool isIdent(size_t i) const
    {
        return i < toks.size() && toks[i].kind == Tok::Ident;
    }

    /** i at an opener; index of its matching closer. */
    size_t matchTok(size_t i, const char* open, const char* close) const
    {
        int depth = 0;
        for (; i < toks.size(); ++i) {
            if (toks[i].text == open)
                ++depth;
            else if (toks[i].text == close && --depth == 0)
                return i;
        }
        return toks.size() - 1;
    }

    /**
     * i at a '[' lambda introducer: skip introducer, params, and the
     * body wholesale (a lambda's effects do not run inline; see the
     * soundness notes in DESIGN.md §9.2). Returns true if consumed.
     */
    bool skipLambda(size_t& i)
    {
        size_t j = matchTok(i, "[", "]") + 1;
        if (atTok(j, "("))
            j = matchTok(j, "(", ")") + 1;
        // qualifiers / trailing return type before the body
        size_t guard = 0;
        while (j < toks.size() && !atTok(j, "{") && guard++ < 8) {
            if (atTok(j, "->")) {
                ++j;
                while (j < toks.size() && !atTok(j, "{") &&
                       !atTok(j, ";") && !atTok(j, ",") &&
                       !atTok(j, ")"))
                    ++j;
                break;
            }
            if (!isIdent(j))
                break;
            ++j;
        }
        if (!atTok(j, "{"))
            return false; // subscript or attribute, not a lambda
        i = matchTok(j, "{", "}") + 1;
        return true;
    }

    // ---- call effects ---------------------------------------------------

    void applyCallEffect(const std::string& callee, AbsState& st)
    {
        auto a = g.acquiresRef.find(callee);
        if (a != g.acquiresRef.end()) {
            addNet(st, a->second, {1, 1});
            events.insert(a->second);
            return;
        }
        auto r = g.releasesRef.find(callee);
        if (r != g.releasesRef.end()) {
            addNet(st, r->second, {-1, -1});
            events.insert(r->second);
            return;
        }
        if (g.balanced.count(callee))
            return; // declared net-zero boundary
        if (!sums)
            return;
        auto it = sums->effects.find(callee);
        if (it == sums->effects.end())
            return;
        for (const auto& [cls, iv] : it->second) {
            if (iv.zero())
                continue;
            addNet(st, cls, iv);
            events.insert(cls);
            std::string chain = callee;
            auto w = sums->witness.find(callee);
            if (w != sums->witness.end() && !w->second.empty())
                chain += " -> " + w->second;
            st.via[cls] = chain;
        }
    }

    struct CallSite
    {
        size_t idx;
        std::string callee;
    };

    /** Direct `name(` call sites in [b, e), skipping lambda bodies. */
    std::vector<CallSite> collectCalls(size_t b, size_t e)
    {
        std::vector<CallSite> out;
        for (size_t i = b; i < e && i < toks.size();) {
            if (atTok(i, "[")) {
                size_t save = i;
                if (skipLambda(i))
                    continue;
                i = save + 1;
                continue;
            }
            if (isIdent(i) && !keywordIsh(toks[i].text) &&
                atTok(i + 1, "("))
                out.push_back({i, toks[i].text});
            ++i;
        }
        return out;
    }

    /**
     * Recognize `atomicCas<T>(addr, x, x +/- n)` in [b, e): the raw
     * refcount-CAS idiom. Returns +1/-1, or 0 when the shape does not
     * match (an eviction claim `(rca, 0, -1)` is deliberately outside
     * the shape: its second argument is not the re-added identifier).
     * On success *cmpAfter receives the token after the call's `)`.
     */
    int casDelta(size_t b, size_t e, size_t* cmpAfter)
    {
        for (size_t i = b; i < e && i < toks.size(); ++i) {
            if (!isIdent(i) || toks[i].text != "atomicCas")
                continue;
            size_t j = i + 1;
            if (atTok(j, "<"))
                j = matchTok(j, "<", ">") + 1;
            if (!atTok(j, "("))
                continue;
            size_t close = matchTok(j, "(", ")");
            // split three top-level args
            std::vector<std::vector<size_t>> args(1);
            int depth = 0;
            for (size_t k = j + 1; k < close; ++k) {
                const std::string& t = toks[k].text;
                if (t == "(" || t == "[" || t == "{" || t == "<")
                    ++depth;
                else if (t == ")" || t == "]" || t == "}" || t == ">")
                    --depth;
                if (t == "," && depth == 0) {
                    args.emplace_back();
                    continue;
                }
                args.back().push_back(k);
            }
            if (args.size() != 3 || args[1].size() != 1 ||
                args[2].size() != 3)
                continue;
            size_t oldv = args[1][0];
            if (!isIdent(oldv))
                continue;
            // arg3 must be `<old> + n` or `<old> - n`
            if (!isIdent(args[2][0]) ||
                toks[args[2][0]].text != toks[oldv].text)
                continue;
            const std::string& op = toks[args[2][1]].text;
            if (op != "+" && op != "-")
                continue;
            if (cmpAfter)
                *cmpAfter = close + 1;
            return op == "+" ? 1 : -1;
        }
        return 0;
    }

    /** Plain effect application for every call in [b, e). */
    void applyCalls(size_t b, size_t e, AbsState& st, size_t skipIdx)
    {
        for (const CallSite& c : collectCalls(b, e)) {
            if (c.idx == skipIdx)
                continue;
            applyCallEffect(c.callee, st);
        }
    }

    /**
     * Split a branch condition [b, e) into success/failure worlds:
     *  - `acq(...)` / `!acq(...)`: the declared acquisition lands only
     *    in the world where the call succeeded;
     *  - `r.ok()` / `!r.ok()` on a bound acquire result: the failure
     *    world hands the reference back (-1) and the binding dies;
     *  - `atomicCas(a, x, x+n) == x`: the delta lands on the success
     *    comparison's world only.
     * Everything else applies symmetrically.
     */
    void applyCondition(size_t b, size_t e, AbsState& thenSt,
                        AbsState& elseSt)
    {
        size_t first = b;
        while (first < e && toks[first].text == "(")
            ++first;
        bool neg = first < e && toks[first].text == "!";

        auto calls = collectCalls(b, e);
        size_t acqIdx = static_cast<size_t>(-1);
        std::string acqClass;
        for (const CallSite& c : calls) {
            auto it = g.acquiresRef.find(c.callee);
            if (it != g.acquiresRef.end()) {
                acqIdx = c.idx;
                acqClass = it->second;
                break;
            }
        }
        for (const CallSite& c : calls) {
            if (c.idx == acqIdx)
                continue;
            applyCallEffect(c.callee, thenSt);
            applyCallEffect(c.callee, elseSt);
        }
        if (acqIdx != static_cast<size_t>(-1)) {
            AbsState& success = neg ? elseSt : thenSt;
            addNet(success, acqClass, {1, 1});
            events.insert(acqClass);
            return;
        }
        // bound-result inspection: [!] var . ok (
        for (size_t i = b; i + 3 < e; ++i) {
            if (!isIdent(i))
                continue;
            auto p = thenSt.pending.find(toks[i].text);
            if (p == thenSt.pending.end())
                continue;
            if ((toks[i + 1].text == "." || toks[i + 1].text == "->") &&
                toks[i + 2].text == "ok" && toks[i + 3].text == "(") {
                const std::string cls = p->second;
                AbsState& failure = neg ? thenSt : elseSt;
                addNet(failure, cls, {-1, -1});
                thenSt.pending.erase(toks[i].text);
                elseSt.pending.erase(toks[i].text);
                return;
            }
        }
        // raw CAS idiom, attributed to the function's declared class
        if (!ownClass.empty()) {
            size_t after = 0;
            int d = casDelta(b, e, &after);
            if (d != 0) {
                bool successIsThen =
                    !(after < e && toks[after].text == "!=");
                AbsState& success = successIsThen ? thenSt : elseSt;
                addNet(success, ownClass,
                       {d, d});
                events.insert(ownClass);
            }
        }
    }

    // ---- statements -----------------------------------------------------

    void walkBlock(size_t& i, AbsState& st)
    {
        ++i; // past '{'
        while (i < toks.size() && !atTok(i, "}"))
            walkStmt(i, st);
        if (i < toks.size())
            ++i; // past '}'
    }

    void walkStmtOrBlock(size_t& i, AbsState& st)
    {
        if (atTok(i, "{"))
            walkBlock(i, st);
        else
            walkStmt(i, st);
    }

    void walkStmt(size_t& i, AbsState& st)
    {
        if (i >= toks.size())
            return;
        const std::string& s = toks[i].text;
        if (s == "{") {
            walkBlock(i, st);
            return;
        }
        if (s == ";") {
            ++i;
            return;
        }
        if (toks[i].kind == Tok::Ident) {
            if (s == "if") {
                walkIf(i, st);
                return;
            }
            if (s == "while") {
                walkWhile(i, st);
                return;
            }
            if (s == "for") {
                walkFor(i, st);
                return;
            }
            if (s == "do") {
                walkDo(i, st);
                return;
            }
            if (s == "switch") {
                walkSwitch(i, st);
                return;
            }
            if (s == "return") {
                walkReturn(i, st);
                return;
            }
            if (s == "break") {
                ++i;
                if (atTok(i, ";"))
                    ++i;
                if (!breakTargets.empty() &&
                    breakTargets.back() == 'L') {
                    if (!st.dead)
                        loops.back().breaks.push_back(st);
                    st.dead = true;
                }
                // a switch-break falls through to the join linearly
                return;
            }
            if (s == "continue") {
                ++i;
                if (atTok(i, ";"))
                    ++i;
                if (!loops.empty()) {
                    if (!st.dead)
                        loops.back().continues.push_back(st);
                    st.dead = true;
                }
                return;
            }
            if (s == "case") {
                while (i < toks.size() && !atTok(i, ":"))
                    ++i;
                if (i < toks.size())
                    ++i;
                return;
            }
            if (s == "default" && atTok(i + 1, ":")) {
                i += 2;
                return;
            }
            if (s == "else") {
                // dangling else from an unrecognized shape: walk it
                ++i;
                walkStmtOrBlock(i, st);
                return;
            }
        }
        walkExprStmt(i, st);
    }

    void walkIf(size_t& i, AbsState& st)
    {
        ++i; // 'if'
        if (atTok(i, "constexpr"))
            ++i;
        size_t cb = 0, ce = 0;
        if (atTok(i, "(")) {
            cb = i + 1;
            ce = matchTok(i, "(", ")");
            i = ce + 1;
        }
        AbsState thenSt = st;
        AbsState elseSt = st;
        if (cb)
            applyCondition(cb, ce, thenSt, elseSt);
        walkStmtOrBlock(i, thenSt);
        if (atTok(i, "else")) {
            ++i;
            walkStmtOrBlock(i, elseSt);
        }
        st = joinState(thenSt, elseSt);
    }

    bool condInfinite(size_t b, size_t e) const
    {
        if (b >= e)
            return true;
        return e - b == 1 &&
               (toks[b].text == "true" || toks[b].text == "1");
    }

    /**
     * Shared loop engine: pass 1 (suppressed) to learn the back-edge
     * state, widen bounds still moving, pass 2 to check. `continue`
     * joins the back edge, `break` the exit; an infinite loop's exit
     * is its breaks alone.
     */
    void runLoop(size_t& i, AbsState& st, size_t cb, size_t ce,
                 size_t ib, size_t ie, bool infinite, bool condFirst)
    {
        const AbsState entry = st;
        const size_t bodyStart = i;

        auto pass = [&](const AbsState& in, LoopCtx& ctx,
                        AbsState& out, size_t& endPos) {
            loops.push_back({});
            breakTargets.push_back('L');
            out = in;
            if (condFirst && cb)
                applyCalls(cb, ce, out, static_cast<size_t>(-1));
            size_t j = bodyStart;
            walkStmtOrBlock(j, out);
            if (ib)
                applyCalls(ib, ie, out, static_cast<size_t>(-1));
            ctx = loops.back();
            loops.pop_back();
            breakTargets.pop_back();
            endPos = j;
        };

        LoopCtx c1, c2;
        AbsState s1, s2;
        size_t end1 = bodyStart, end2 = bodyStart;
        ++suppress;
        pass(entry, c1, s1, end1);
        --suppress;

        AbsState back = s1;
        for (const AbsState& c : c1.continues)
            back = joinState(back, c);
        AbsState in2 = joinState(entry, back);
        widen(in2, entry);

        pass(in2, c2, s2, end2);
        i = end2;

        AbsState exit;
        exit.dead = true;
        if (!infinite) {
            exit = entry;
            if (condFirst && cb)
                applyCalls(cb, ce, exit, static_cast<size_t>(-1));
            exit = joinState(exit, s2);
        }
        for (const AbsState& bst : c2.breaks)
            exit = joinState(exit, bst);
        st = exit;
    }

    /** Bounds that moved across the first pass go unbounded. */
    static void widen(AbsState& in2, const AbsState& entry)
    {
        for (auto& [cls, iv] : in2.net) {
            Interval e0 = getNet(entry, cls);
            if (iv.lo < e0.lo)
                iv.lo = -kInf;
            if (iv.hi > e0.hi)
                iv.hi = kInf;
        }
    }

    void walkWhile(size_t& i, AbsState& st)
    {
        ++i; // 'while'
        size_t cb = 0, ce = 0;
        if (atTok(i, "(")) {
            cb = i + 1;
            ce = matchTok(i, "(", ")");
            i = ce + 1;
        }
        runLoop(i, st, cb, ce, 0, 0, condInfinite(cb, ce), true);
    }

    void walkFor(size_t& i, AbsState& st)
    {
        ++i; // 'for'
        size_t cb = 0, ce = 0, ib = 0, ie = 0;
        if (atTok(i, "(")) {
            size_t open = i;
            size_t close = matchTok(i, "(", ")");
            // find top-level ';' separators
            std::vector<size_t> semis;
            int depth = 0;
            for (size_t k = open + 1; k < close; ++k) {
                const std::string& t = toks[k].text;
                if (t == "(" || t == "[" || t == "{")
                    ++depth;
                else if (t == ")" || t == "]" || t == "}")
                    --depth;
                else if (t == ";" && depth == 0)
                    semis.push_back(k);
            }
            if (semis.size() >= 2) {
                applyCalls(open + 1, semis[0], st,
                           static_cast<size_t>(-1)); // init
                cb = semis[0] + 1;
                ce = semis[1];
                ib = semis[1] + 1;
                ie = close;
            } else {
                // range-for: header effects once, conditional loop
                applyCalls(open + 1, close, st,
                           static_cast<size_t>(-1));
            }
            i = close + 1;
        }
        runLoop(i, st, cb, ce, ib, ie,
                cb != 0 || ib != 0 ? condInfinite(cb, ce) : false,
                true);
    }

    void walkDo(size_t& i, AbsState& st)
    {
        ++i; // 'do'
        const AbsState entry = st;
        const size_t bodyStart = i;

        auto pass = [&](const AbsState& in, LoopCtx& ctx,
                        AbsState& out, size_t& endPos) {
            loops.push_back({});
            breakTargets.push_back('L');
            out = in;
            size_t j = bodyStart;
            walkStmtOrBlock(j, out);
            ctx = loops.back();
            loops.pop_back();
            breakTargets.pop_back();
            endPos = j;
        };

        LoopCtx c1, c2;
        AbsState s1, s2;
        size_t end1 = bodyStart, end2 = bodyStart;
        ++suppress;
        pass(entry, c1, s1, end1);
        --suppress;
        AbsState back = s1;
        for (const AbsState& c : c1.continues)
            back = joinState(back, c);
        AbsState in2 = joinState(entry, back);
        widen(in2, entry);
        pass(in2, c2, s2, end2);
        i = end2;

        // trailing `while (cond);`
        if (atTok(i, "while")) {
            ++i;
            if (atTok(i, "(")) {
                size_t close = matchTok(i, "(", ")");
                applyCalls(i + 1, close, s2, static_cast<size_t>(-1));
                i = close + 1;
            }
            if (atTok(i, ";"))
                ++i;
        }
        AbsState exit = s2; // body runs at least once
        for (const AbsState& bst : c2.breaks)
            exit = joinState(exit, bst);
        st = exit;
    }

    void walkSwitch(size_t& i, AbsState& st)
    {
        ++i; // 'switch'
        if (atTok(i, "(")) {
            size_t close = matchTok(i, "(", ")");
            applyCalls(i + 1, close, st, static_cast<size_t>(-1));
            i = close + 1;
        }
        // linear-block approximation: case labels are noise, breaks
        // fall through to the join (documented in DESIGN.md §9.2)
        breakTargets.push_back('S');
        walkStmtOrBlock(i, st);
        breakTargets.pop_back();
    }

    void walkReturn(size_t& i, AbsState& st)
    {
        int line = toks[i].line;
        ++i; // 'return'
        size_t b = i;
        scanToSemi(i);
        applyCalls(b, i, st, static_cast<size_t>(-1));
        if (atTok(i, ";"))
            ++i;
        if (!st.dead) {
            if (suppress == 0)
                exits.push_back({st, line});
            st.dead = true;
        }
    }

    /** Advance i to the statement-ending ';' (not past it). */
    void scanToSemi(size_t& i)
    {
        int depth = 0;
        while (i < toks.size()) {
            const std::string& t = toks[i].text;
            if (t == ";" && depth == 0)
                return;
            if (t == "(" || t == "{")
                ++depth;
            else if (t == ")" || t == "}") {
                if (depth == 0)
                    return; // stray closer: enclosing scope ends
                --depth;
            } else if (t == "[") {
                size_t save = i;
                if (skipLambda(i))
                    continue;
                i = save;
            }
            ++i;
        }
    }

    void walkExprStmt(size_t& i, AbsState& st)
    {
        size_t b = i;
        scanToSemi(i);
        size_t e = i;
        if (atTok(i, ";"))
            ++i;
        else if (atTok(i, ")") || atTok(i, "}"))
            ++i; // malformed fragment; resynchronize

        // declaration-with-binding: `Type var = ...acq(...)...`
        std::string var;
        size_t eq = e;
        {
            int depth = 0;
            for (size_t k = b; k < e; ++k) {
                const std::string& t = toks[k].text;
                if (t == "(" || t == "[" || t == "{" || t == "<")
                    ++depth;
                else if (t == ")" || t == "]" || t == "}" || t == ">")
                    --depth;
                else if (t == "=" && depth == 0) {
                    eq = k;
                    break;
                }
            }
            if (eq > b + 1 && eq < e && isIdent(eq - 1)) {
                bool typish = true;
                for (size_t k = b; k < eq; ++k) {
                    const std::string& t = toks[k].text;
                    if (toks[k].kind == Tok::Ident || t == "::" ||
                        t == "<" || t == ">" || t == "&" || t == "*" ||
                        t == ",")
                        continue;
                    typish = false;
                    break;
                }
                if (typish)
                    var = toks[eq - 1].text;
            }
        }

        for (const CallSite& c : collectCalls(b, e)) {
            applyCallEffect(c.callee, st);
            if (!var.empty()) {
                auto it = g.acquiresRef.find(c.callee);
                if (it != g.acquiresRef.end())
                    st.pending[var] = it->second;
            }
        }
    }
};

// ---- publication scan ---------------------------------------------------

struct Pub
{
    std::string state;
    int line;
};

/**
 * PteState publications in [b, e): `.state = ...PteState::S...` field
 * assignments and `store(...stateAddr/state_addr..., ...PteState::S)`
 * calls. Comparisons (`==`, `!=`) never match; a `store` without a
 * state-address argument never matches.
 */
std::vector<Pub>
findPublications(const std::vector<Token>& toks, size_t b, size_t e)
{
    std::vector<Pub> pubs;
    for (size_t i = b; i < e && i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != Tok::Ident)
            continue;
        if (t.text == "state" && i > b &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
            i + 1 < e && toks[i + 1].text == "=") {
            for (size_t j = i + 2; j < e && toks[j].text != ";"; ++j) {
                if (toks[j].kind == Tok::Ident &&
                    toks[j].text == "PteState" && j + 2 < e &&
                    toks[j + 1].text == "::") {
                    pubs.push_back({toks[j + 2].text, t.line});
                    break;
                }
            }
            continue;
        }
        if (t.text == "store") {
            size_t j = i + 1;
            if (j < e && toks[j].text == "<") {
                int d = 0;
                for (; j < e; ++j) {
                    if (toks[j].text == "<")
                        ++d;
                    else if (toks[j].text == ">" && --d == 0) {
                        ++j;
                        break;
                    }
                }
            }
            if (j >= e || toks[j].text != "(")
                continue;
            int depth = 0;
            size_t close = j;
            for (; close < e; ++close) {
                if (toks[close].text == "(")
                    ++depth;
                else if (toks[close].text == ")" && --depth == 0)
                    break;
            }
            bool addr = false;
            std::string state;
            for (size_t k = j + 1; k < close; ++k) {
                if (toks[k].kind != Tok::Ident)
                    continue;
                if (toks[k].text == "stateAddr" ||
                    toks[k].text == "state_addr")
                    addr = true;
                if (toks[k].text == "PteState" && k + 2 < close &&
                    toks[k + 1].text == "::")
                    state = toks[k + 2].text;
            }
            if (addr && !state.empty())
                pubs.push_back({state, t.line});
        }
    }
    return pubs;
}

void
emitFinding(std::vector<Finding>& out, const FileModel& m, int line,
            const std::string& rule, const std::string& msg)
{
    out.push_back({m.path, line, rule, msg, false});
}

// ---- per-function checks ------------------------------------------------

void
checkRefBalance(const FileModel& m, const Func& f, const GlobalModel& g,
                const TypestateSummaries* sums,
                std::vector<Finding>& findings)
{
    const bool isBal = g.balanced.count(f.name) > 0;
    auto ai = g.acquiresRef.find(f.name);
    auto ri = g.releasesRef.find(f.name);
    const bool isAcq = ai != g.acquiresRef.end();
    const bool isRel = ri != g.releasesRef.end();
    if (!isBal && !isAcq && !isRel)
        return;
    if (!f.hasBody)
        return;

    RefWalker w(m, f, g, sums);
    w.run();

    std::set<std::pair<int, std::string>> reported;
    for (const RefWalker::Exit& e : w.exits) {
        std::set<std::string> classes;
        for (const auto& [cls, iv] : e.st.net)
            classes.insert(cls);
        if (isAcq)
            classes.insert(ai->second);
        if (isRel)
            classes.insert(ri->second);
        for (const std::string& cls : classes) {
            Interval v = getNet(e.st, cls);
            bool ok;
            std::string want;
            if (isAcq && cls == ai->second) {
                ok = v.lo >= 0 && v.hi <= 1;
                want = "0 (failure path) or +1 (AP_ACQUIRES_REF)";
            } else if (isRel && cls == ri->second) {
                if (!w.events.count(cls))
                    continue; // trusted leaf boundary
                ok = v.lo == -1 && v.hi == -1;
                want = "exactly -1 (AP_RELEASES_REF)";
            } else {
                ok = v.zero();
                want = isBal ? "0 on every path (AP_BALANCED)"
                             : "0 (class not declared here)";
            }
            if (ok)
                continue;
            if (!reported.insert({e.line, cls}).second)
                continue;
            std::string msg = "path returns with net " + ivText(v) +
                              " ref(s) on '" + cls + "' in " + f.name +
                              "; expected " + want;
            auto via = e.st.via.find(cls);
            if (via != e.st.via.end())
                msg += " (effect inferred via " + via->second + ")";
            emitFinding(findings, m, e.line, "ref-balance", msg);
        }
    }
}

void
checkStateEdges(const FileModel& m, const Func& f, const GlobalModel& g,
                const TypestateSummaries* sums,
                std::vector<Finding>& findings)
{
    if (!f.hasBody)
        return;
    auto di = g.transitions.find(f.name);
    const std::set<std::string>* declared =
        di == g.transitions.end() ? nullptr : &di->second;

    std::vector<Pub> pubs =
        findPublications(m.lx.tokens, f.bodyBegin, f.bodyEnd);
    for (const Pub& p : pubs) {
        bool covered = false;
        if (declared)
            for (const std::string& e : *declared)
                if (e.size() > p.state.size() &&
                    e.compare(e.size() - p.state.size(),
                              p.state.size(), p.state) == 0 &&
                    e[e.size() - p.state.size() - 1] == '>') {
                    covered = true;
                    break;
                }
        if (!covered)
            emitFinding(findings, m, p.line, "state-edge",
                        f.name + " publishes PteState::" + p.state +
                            " without a covering AP_TRANSITIONS edge "
                            "'*->" +
                            p.state + "'");
    }

    if (!declared)
        return;
    for (const std::string& e : *declared) {
        size_t arrow = e.find("->");
        if (arrow == std::string::npos)
            continue; // malformed; transition-decl reports it
        std::string to = e.substr(arrow + 2);
        bool witnessed = false;
        for (const Pub& p : pubs)
            if (p.state == to) {
                witnessed = true;
                break;
            }
        if (!witnessed)
            for (const Call& c : f.calls) {
                auto cd = g.transitions.find(c.callee);
                if (cd != g.transitions.end() && cd->second.count(e)) {
                    witnessed = true;
                    break;
                }
                if (sums) {
                    auto cs = sums->transitions.find(c.callee);
                    if (cs != sums->transitions.end() &&
                        cs->second.count(e)) {
                        witnessed = true;
                        break;
                    }
                }
            }
        if (!witnessed)
            emitFinding(findings, m, f.line, "state-edge",
                        f.name + " declares transition '" + e +
                            "' but neither the body nor any callee "
                            "publishes it");
    }
}

void
checkTransitionDecls(const FileModel& m, const GlobalModel& g,
                     std::vector<Finding>& findings)
{
    for (const Func& f : m.funcs) {
        for (const Annotation& a : f.anns) {
            if (a.name != "AP_TRANSITIONS")
                continue;
            if (a.args.empty()) {
                emitFinding(findings, m, a.line, "transition-decl",
                            "AP_TRANSITIONS on " + f.name +
                                " lists no edges");
                continue;
            }
            for (const std::string& raw : a.args) {
                std::string e = normEdge(raw);
                if (!wellFormedEdge(e)) {
                    emitFinding(findings, m, a.line, "transition-decl",
                                "malformed transition '" + raw +
                                    "' on " + f.name +
                                    " (want 'From->To')");
                    continue;
                }
                if (g.pteEdges.empty()) {
                    emitFinding(
                        findings, m, a.line, "transition-decl",
                        "AP_TRANSITIONS on " + f.name +
                            " but no pte-edges directive registers "
                            "the state machine");
                    continue;
                }
                if (!g.pteEdgeSet.count(e))
                    emitFinding(findings, m, a.line, "transition-decl",
                                "transition '" + e + "' on " + f.name +
                                    " is not an edge of the "
                                    "registered PteState machine");
            }
        }
    }

    // Drift check: a `kPteStateMachine[] = {{"A","B"},...}` initializer
    // in this file must list exactly the directive's edges, in order.
    const std::vector<Token>& toks = m.lx.tokens;
    for (size_t i = 0; i + 4 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident ||
            toks[i].text != "kPteStateMachine")
            continue;
        if (toks[i + 1].text != "[" || toks[i + 2].text != "]" ||
            toks[i + 3].text != "=" || toks[i + 4].text != "{")
            continue;
        std::vector<std::string> table;
        int depth = 0;
        std::vector<std::string> pair;
        size_t j = i + 4;
        for (; j < toks.size(); ++j) {
            const std::string& t = toks[j].text;
            if (t == "{") {
                ++depth;
                if (depth == 2)
                    pair.clear();
            } else if (t == "}") {
                if (depth == 2 && pair.size() == 2)
                    table.push_back(pair[0] + "->" + pair[1]);
                if (--depth == 0)
                    break;
            } else if (depth == 2 && toks[j].kind == Tok::String) {
                std::string s = t;
                if (s.size() >= 2 && s.front() == '"' &&
                    s.back() == '"')
                    s = s.substr(1, s.size() - 2);
                pair.push_back(s);
            }
        }
        if (m.pteEdges.empty()) {
            emitFinding(findings, m, toks[i].line, "transition-decl",
                        "kPteStateMachine has no adjacent pte-edges "
                        "directive for aplint to verify against");
        } else if (table != m.pteEdges) {
            emitFinding(findings, m, toks[i].line, "transition-decl",
                        "kPteStateMachine initializer drifted from "
                        "the pte-edges directive (" +
                            std::to_string(table.size()) + " vs " +
                            std::to_string(m.pteEdges.size()) +
                            " edges, or order/content differs)");
        }
        break;
    }
}

} // namespace

Interval
joinIv(Interval a, Interval b)
{
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval
addIv(Interval a, Interval b)
{
    return {satAdd(a.lo, b.lo), satAdd(a.hi, b.hi)};
}

std::string
ivText(Interval v)
{
    auto one = [](int x) -> std::string {
        if (x >= kInf)
            return "+inf";
        if (x <= -kInf)
            return "-inf";
        return (x > 0 ? "+" : "") + std::to_string(x);
    };
    if (v.lo == v.hi)
        return one(v.lo);
    return "[" + one(v.lo) + "," + one(v.hi) + "]";
}

TypestateSummaries
computeRefSummaries(const std::vector<FileModel>& files,
                    const GlobalModel& g, const CallGraph& cg)
{
    TypestateSummaries out;

    // transitive closure of declared transitions over the call graph
    for (const auto& [name, edges] : g.transitions)
        out.transitions[name] = edges;
    {
        std::deque<std::string> wl;
        for (const auto& [name, node] : cg.nodes)
            wl.push_back(name);
        size_t guard = 0;
        const size_t kGuard = 200000;
        while (!wl.empty() && guard++ < kGuard) {
            std::string n = wl.front();
            wl.pop_front();
            auto node = cg.nodes.find(n);
            if (node == cg.nodes.end())
                continue;
            std::set<std::string> merged;
            auto self = out.transitions.find(n);
            if (self != out.transitions.end())
                merged = self->second;
            size_t before = merged.size();
            for (const std::string& c : node->second.callees) {
                auto it = out.transitions.find(c);
                if (it != out.transitions.end())
                    merged.insert(it->second.begin(),
                                  it->second.end());
            }
            if (merged.size() != before) {
                out.transitions[n] = std::move(merged);
                auto cal = cg.callers.find(n);
                if (cal != cg.callers.end())
                    for (const std::string& c : cal->second)
                        wl.push_back(c);
            }
        }
    }

    // ref-effect fixpoint over unannotated bodies; annotated
    // functions are declared boundaries and never inferred
    auto annotated = [&](const std::string& n) {
        return g.acquiresRef.count(n) || g.releasesRef.count(n) ||
               g.balanced.count(n);
    };
    std::map<std::string,
             std::vector<std::pair<const FileModel*, const Func*>>>
        bodies;
    for (const FileModel& m : files)
        for (const Func& f : m.funcs)
            if (f.hasBody && !annotated(f.name))
                bodies[f.name].push_back({&m, &f});

    std::deque<std::string> wl;
    std::set<std::string> queued;
    for (const auto& [name, v] : bodies) {
        wl.push_back(name);
        queued.insert(name);
    }
    size_t guard = 0;
    const size_t kGuard = 100000;
    while (!wl.empty() && guard++ < kGuard) {
        std::string n = wl.front();
        wl.pop_front();
        queued.erase(n);

        std::map<std::string, Interval> eff;
        std::string via;
        bool any = false;
        for (const auto& [mp, fp] : bodies[n]) {
            RefWalker w(*mp, *fp, g, &out);
            w.run();
            for (const RefWalker::Exit& e : w.exits) {
                std::set<std::string> classes;
                for (const auto& [cls, iv] : e.st.net)
                    classes.insert(cls);
                for (const auto& [cls, iv] : eff)
                    classes.insert(cls);
                std::map<std::string, Interval> next;
                for (const std::string& cls : classes) {
                    Interval v = getNet(e.st, cls);
                    next[cls] = any ? joinIv(eff.count(cls)
                                                 ? eff[cls]
                                                 : Interval{},
                                             v)
                                    : v;
                }
                eff = std::move(next);
                any = true;
                for (const auto& [cls, w2] : e.st.via)
                    if (via.empty())
                        via = w2;
            }
        }
        // clamp runaway bounds so cyclic graphs terminate
        for (auto& [cls, iv] : eff) {
            if (iv.lo < -4)
                iv.lo = -kInf;
            if (iv.hi > 4)
                iv.hi = kInf;
        }
        for (auto it = eff.begin(); it != eff.end();)
            it = it->second.zero() ? eff.erase(it) : std::next(it);

        auto cur = out.effects.find(n);
        bool changed = cur == out.effects.end() ? !eff.empty()
                                                : cur->second != eff;
        if (!changed)
            continue;
        out.effects[n] = eff;
        if (!via.empty())
            out.witness[n] = via;
        auto cal = cg.callers.find(n);
        if (cal != cg.callers.end())
            for (const std::string& c : cal->second)
                if (bodies.count(c) && queued.insert(c).second)
                    wl.push_back(c);
    }
    return out;
}

void
runTypestate(const FileModel& m, const GlobalModel& g,
             const TypestateSummaries* sums,
             std::vector<Finding>& findings)
{
    for (const Func& f : m.funcs) {
        checkRefBalance(m, f, g, sums, findings);
        checkStateEdges(m, f, g, sums, findings);
    }
    checkTransitionDecls(m, g, findings);
}

} // namespace ap::lint
