/**
 * @file
 * A declaration/scope parser over the aplint token stream. It is not a
 * C++ front end: it recognizes just enough structure for the protocol
 * rules — functions and their trailing AP_* annotations, lock-member
 * registrations, control-flow scopes with their condition identifiers,
 * call sites with receivers, and aplint comment directives (waivers and
 * the lock-order declaration).
 */

#ifndef APLINT_PARSER_HH
#define APLINT_PARSER_HH

#include "lexer.hh"

#include <string>
#include <vector>

namespace ap::lint {

/** One trailing AP_* contract macro on a declaration. */
struct Annotation
{
    std::string name; ///< e.g. "AP_LOCKSTEP"
    std::string arg;  ///< first string argument, unquoted; "" if none
    /** All string arguments in order (AP_TRANSITIONS takes several). */
    std::vector<std::string> args;
    int line = 0;
};

/** Control-flow scope kinds that matter to the rules. */
enum class ScopeKind { Body, If, Else, Loop, Lambda };

/** A node in a function's scope tree. */
struct ScopeNode
{
    int parent = -1; ///< index into Func::scopes, -1 for the body root
    ScopeKind kind = ScopeKind::Body;
    std::vector<std::string> condIdents; ///< identifiers in the condition
    int line = 0;
};

/** One call site inside a function body. */
struct Call
{
    std::string callee;   ///< identifier directly before the '('
    std::string receiver; ///< last identifier of the receiver chain, or ""
    size_t tokIndex = 0;  ///< index of the callee token in the file stream
    int scope = 0;        ///< innermost enclosing scope
    int line = 0;
};

/** A parsed function (or method, or test body). */
struct Func
{
    std::string name;      ///< unqualified name
    std::string className; ///< enclosing class or out-of-line qualifier
    std::vector<Annotation> anns;
    std::vector<ScopeNode> scopes; ///< scopes[0] is the body root
    std::vector<Call> calls;       ///< in token order
    size_t bodyBegin = 0;          ///< token index of the body '{'
    size_t bodyEnd = 0;            ///< token index one past the body '}'
    bool hasBody = false;
    int line = 0;

    bool hasAnn(const std::string& n) const
    {
        for (const auto& a : anns)
            if (a.name == n)
                return true;
        return false;
    }
    const Annotation* findAnn(const std::string& n) const
    {
        for (const auto& a : anns)
            if (a.name == n)
                return &a;
        return nullptr;
    }
};

/** A member or accessor registered as a lock class via AP_LOCK_LEVEL. */
struct LockDecl
{
    std::string name;      ///< member or accessor identifier
    std::string lockClass; ///< e.g. "pt.bucket"
    int line = 0;
};

/** One allow(...) or allow-file(...) waiver comment. */
struct Waiver
{
    std::string rule;
    std::string reason;
    int line = 0;
    bool fileScope = false;
    bool malformed = false; ///< missing rule or reason
};

/** Everything aplint knows about one source file. */
struct FileModel
{
    std::string path;
    LexResult lx;
    std::vector<Func> funcs;
    std::vector<LockDecl> locks;
    std::vector<Waiver> waivers;
    /** Orders from lock-order directive comments (a < b < c lists). */
    std::vector<std::vector<std::string>> lockOrders;
    /** "A->B" edges from pte-edges directive comments, in order. */
    std::vector<std::string> pteEdges;
};

/** Parse one file's source text into the model. */
FileModel parseFile(const std::string& path, const std::string& source);

} // namespace ap::lint

#endif // APLINT_PARSER_HH
