#include "lexer.hh"

#include <cctype>

namespace ap::lint {

namespace {

/** Multi-character operators, longest first within a leading char. */
const char* kOps3[] = {"<<=", ">>=", "...", "->*"};
const char* kOps2[] = {"::", "->", "++", "--", "+=", "-=", "*=", "/=",
                       "%=", "&=", "|=", "^=", "==", "!=", "<=", ">=",
                       "&&", "||", "<<", ">>"};

bool
startsWith(const std::string& s, size_t i, const char* op)
{
    for (size_t k = 0; op[k]; ++k)
        if (i + k >= s.size() || s[i + k] != op[k])
            return false;
    return true;
}

} // namespace

LexResult
lex(const std::string& src)
{
    LexResult out;
    size_t i = 0;
    int line = 1;
    const size_t n = src.size();

    auto peek = [&](size_t off = 0) -> char {
        return i + off < n ? src[i + off] : '\0';
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && peek(1) == '/') {
            size_t j = i + 2;
            while (j < n && src[j] != '\n')
                ++j;
            out.comments.push_back({src.substr(i + 2, j - i - 2), line});
            i = j;
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            size_t j = i + 2;
            int start = line;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n')
                    ++line;
                ++j;
            }
            out.comments.push_back(
                {src.substr(i + 2, j - i - 2), start});
            i = j + 2 <= n ? j + 2 : n;
            continue;
        }
        // Preprocessor directive: consume the whole (continued) line.
        // Only when # starts a line (ignoring whitespace) — otherwise
        // it is a stringize operator inside a macro body we never see.
        if (c == '#') {
            size_t j = i;
            while (j < n) {
                if (src[j] == '\n') {
                    if (j > 0 && src[j - 1] == '\\') {
                        ++line;
                        ++j;
                        continue;
                    }
                    break;
                }
                ++j;
            }
            i = j;
            continue;
        }
        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"') {
            size_t j = i + 2;
            std::string delim;
            while (j < n && src[j] != '(')
                delim += src[j++];
            std::string close = ")" + delim + "\"";
            size_t end = src.find(close, j);
            if (end == std::string::npos)
                end = n;
            else
                end += close.size();
            int start = line;
            for (size_t k = i; k < end; ++k)
                if (src[k] == '\n')
                    ++line;
            out.tokens.push_back(
                {Tok::String, src.substr(i, end - i), start});
            i = end;
            continue;
        }
        // String / char literal with escapes.
        if (c == '"' || c == '\'') {
            size_t j = i + 1;
            int start = line;
            while (j < n && src[j] != c) {
                if (src[j] == '\\')
                    ++j;
                if (src[j] == '\n')
                    ++line;
                ++j;
            }
            ++j;
            out.tokens.push_back(
                {c == '"' ? Tok::String : Tok::Char,
                 src.substr(i, std::min(j, n) - i), start});
            i = j;
            continue;
        }
        // Identifier / keyword / macro name.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < n && (std::isalnum(
                                 static_cast<unsigned char>(src[j])) ||
                             src[j] == '_'))
                ++j;
            out.tokens.push_back({Tok::Ident, src.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Number (incl. hex, float, digit separators, suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(
                             static_cast<unsigned char>(peek(1))))) {
            size_t j = i;
            while (j < n) {
                char d = src[j];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '.' || d == '\'') {
                    ++j;
                    continue;
                }
                // Exponent signs: 1e-5, 0x1p+3.
                if ((d == '+' || d == '-') && j > i &&
                    (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                     src[j - 1] == 'p' || src[j - 1] == 'P')) {
                    ++j;
                    continue;
                }
                break;
            }
            out.tokens.push_back(
                {Tok::Number, src.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Operators, longest match first.
        bool matched = false;
        for (const char* op : kOps3) {
            if (startsWith(src, i, op)) {
                out.tokens.push_back({Tok::Punct, op, line});
                i += 3;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        for (const char* op : kOps2) {
            if (startsWith(src, i, op)) {
                out.tokens.push_back({Tok::Punct, op, line});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        out.tokens.push_back({Tok::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

} // namespace ap::lint
