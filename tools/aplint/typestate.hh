/**
 * @file
 * Typestate verification of the page lifecycle: path-sensitive
 * abstract interpretation over per-function token streams that checks
 * the declared resource protocols (see docs/ANALYSIS.md and
 * DESIGN.md §9.2):
 *
 *   ref-balance     Net refcount effect on a tracked resource class
 *                   ("pc.page", "pc.staging") violates the function's
 *                   declaration on some return path. AP_ACQUIRES_REF
 *                   bodies may net 0 (failure path) or +1;
 *                   AP_RELEASES_REF bodies must net exactly -1 on
 *                   every path (checked only when the body contains a
 *                   tracked event — an event-free body is a trusted
 *                   leaf boundary); AP_BALANCED bodies must net
 *                   exactly 0 for every class on every path, early
 *                   returns and error branches included.
 *
 *   state-edge      A PteState publication (a `.state =` assignment
 *                   or a `store(...stateAddr..., ...PteState::S...)`
 *                   call) not covered by an AP_TRANSITIONS edge
 *                   `*->S` on the enclosing function, or a declared
 *                   edge with no witnessing publication in the body
 *                   or a (transitively) declaring callee.
 *
 *   transition-decl Malformed AP_TRANSITIONS edge, an edge absent
 *                   from the registered machine (the `pte-edges:`
 *                   comment directive, the static twin of
 *                   ap::kPteStateMachine), or drift between the
 *                   directive and the kPteStateMachine initializer.
 *
 * The abstract domain is one interval [lo, hi] of net acquisitions
 * per resource class. Branch join is the interval hull; loops are
 * widened by a second pass (a bound still moving after the first
 * body pass goes to +/-infinity); return statements snapshot the
 * path state for checking and kill the path. Call effects come from
 * the declarations (AP_ACQUIRES_REF +1, AP_RELEASES_REF -1,
 * AP_BALANCED 0) or, through the call-graph fixpoint, from inferred
 * summaries of unannotated helpers — so a helper that leaks a
 * reference is caught at its annotated caller with a witness chain.
 */

#ifndef APLINT_TYPESTATE_HH
#define APLINT_TYPESTATE_HH

#include "callgraph.hh"
#include "rules.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ap::lint {

/** Net-refcount interval; bounds at +/-kInf mean "unbounded". */
struct Interval
{
    static constexpr int kInf = 1 << 20;
    int lo = 0;
    int hi = 0;
    bool operator==(const Interval& o) const
    {
        return lo == o.lo && hi == o.hi;
    }
    bool operator!=(const Interval& o) const { return !(*this == o); }
    bool zero() const { return lo == 0 && hi == 0; }
};

/** Interval hull (branch join). */
Interval joinIv(Interval a, Interval b);

/** Saturating pointwise sum (sequential composition). */
Interval addIv(Interval a, Interval b);

/** "+1", "[-1,0]", "[2,+inf]" -- human-readable bounds. */
std::string ivText(Interval v);

/**
 * Interprocedural ref-effect summaries, computed bottom-up over the
 * PR 6 call graph. Annotated functions are fixed boundaries (their
 * declaration is their effect); unannotated bodies are interpreted
 * and their joined return-path effect propagated to callers.
 */
struct TypestateSummaries
{
    /** name -> class -> net effect over all return paths. */
    std::map<std::string, std::map<std::string, Interval>> effects;
    /** name -> callee chain explaining a nonzero inferred effect. */
    std::map<std::string, std::string> witness;
    /** Declared AP_TRANSITIONS closed transitively over callees. */
    std::map<std::string, std::set<std::string>> transitions;
};

/** Worklist fixpoint over every parsed body. */
TypestateSummaries
computeRefSummaries(const std::vector<FileModel>& files,
                    const GlobalModel& g, const CallGraph& cg);

/**
 * Run the typestate rules over one file. `sums` may be null (unit
 * tests / --no-wpa): declared annotations alone then drive call
 * effects and edge witnessing.
 */
void runTypestate(const FileModel& m, const GlobalModel& g,
                  const TypestateSummaries* sums,
                  std::vector<Finding>& findings);

} // namespace ap::lint

#endif // APLINT_TYPESTATE_HH
