/**
 * @file
 * The aplint rule engine: cross-file registries built from AP_*
 * annotations plus the per-file checks. Rule IDs (see docs/ANALYSIS.md
 * "Static matrix"):
 *
 *   leader-only          AP_LEADER_ONLY callee without leader election
 *   lockstep-divergence  AP_LOCKSTEP call under a divergent lane guard
 *   no-yield             yielding call in AP_NO_YIELD or under a lock
 *   lock-order           undeclared/misordered registered-lock acquire
 *   linked-escape        AP_REQUIRES_LINKED pointer escapes its scope
 *   assert-side-effect   AP_ASSERT/AP_CHECK condition mutates state
 *   waiver-syntax        malformed or unknown aplint waiver comment
 */

#ifndef APLINT_RULES_HH
#define APLINT_RULES_HH

#include "parser.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ap::lint {

/** One diagnostic. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    bool waived = false;
};

/** Cross-file registries keyed by unqualified function name. */
struct GlobalModel
{
    std::set<std::string> lockstep;       ///< AP_LOCKSTEP
    std::set<std::string> leaderOnly;     ///< AP_LEADER_ONLY
    std::set<std::string> electsLeader;   ///< AP_ELECTS_LEADER
    std::set<std::string> requiresLinked; ///< AP_REQUIRES_LINKED
    std::set<std::string> noYield;        ///< AP_NO_YIELD
    std::set<std::string> yields;         ///< AP_YIELDS
    /** function name -> lock classes it may acquire (AP_ACQUIRES). */
    std::map<std::string, std::set<std::string>> acquires;
    /** lock member/accessor name -> lock class (AP_LOCK_LEVEL). */
    std::map<std::string, std::string> lockNames;
    /** canonical order, outermost first; empty if no directive. */
    std::vector<std::string> lockOrder;
    std::map<std::string, int> lockRank;
};

/** All rule IDs aplint can emit (used to validate waivers). */
const std::set<std::string>& knownRules();

/** Merge annotations and directives from every parsed file. */
GlobalModel buildGlobal(const std::vector<FileModel>& files,
                        std::vector<Finding>& findings);

/** Run every rule on one file against the global registries. */
void runRules(const FileModel& file, const GlobalModel& g,
              std::vector<Finding>& findings);

} // namespace ap::lint

#endif // APLINT_RULES_HH
