/**
 * @file
 * The aplint rule engine: cross-file registries built from AP_*
 * annotations plus the per-file checks. Rule IDs (see docs/ANALYSIS.md
 * "Static matrix"):
 *
 *   leader-only          AP_LEADER_ONLY callee without leader election
 *   lockstep-divergence  AP_LOCKSTEP call under a divergent lane guard
 *   no-yield             yielding call in AP_NO_YIELD or under a lock
 *   lock-order           undeclared/misordered registered-lock acquire
 *   linked-escape        AP_REQUIRES_LINKED pointer escapes its scope
 *   assert-side-effect   AP_ASSERT/AP_CHECK condition mutates state
 *   waiver-syntax        malformed or unknown aplint waiver comment
 *
 * The v2 whole-program layer (callgraph.hh, dataflow.hh) adds:
 *
 *   must-check-status    AP_MUST_CHECK result dropped, overwritten, or
 *                        out of scope before inspection
 *   linked-escape-v2     linked raw pointer stored/returned via a
 *                        local, or used after a yield or unlink
 *   contract-propagation declared contract contradicts the summary
 *                        inferred bottom-up from callees
 *   unused-waiver        a waiver whose rule no longer fires there
 *
 * The v3 typestate layer (typestate.hh) adds:
 *
 *   ref-balance          net refcount on a tracked resource class
 *                        violates the function's declared effect
 *                        (AP_ACQUIRES_REF / AP_RELEASES_REF /
 *                        AP_BALANCED) on some path
 *   state-edge           PteState publication outside the function's
 *                        AP_TRANSITIONS declaration, or a declared
 *                        edge with no witnessing publication
 *   transition-decl      malformed AP_TRANSITIONS edge, an edge not in
 *                        the registered machine, or drift between the
 *                        pte-edges directive and kPteStateMachine
 */

#ifndef APLINT_RULES_HH
#define APLINT_RULES_HH

#include "parser.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ap::lint {

/** One diagnostic. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    bool waived = false;
    /** Non-fatal advisory (e.g. unused-waiver without --strict). */
    bool note = false;
    /** Matched an entry in the committed baseline; tolerated. */
    bool baselined = false;
};

/** Cross-file registries keyed by unqualified function name. */
struct GlobalModel
{
    std::set<std::string> lockstep;       ///< AP_LOCKSTEP
    std::set<std::string> leaderOnly;     ///< AP_LEADER_ONLY
    std::set<std::string> electsLeader;   ///< AP_ELECTS_LEADER
    std::set<std::string> requiresLinked; ///< AP_REQUIRES_LINKED
    std::set<std::string> noYield;        ///< AP_NO_YIELD
    std::set<std::string> yields;         ///< AP_YIELDS
    std::set<std::string> mustCheck;      ///< AP_MUST_CHECK
    /** AP_RETURNS_LINKED plus AP_REQUIRES_LINKED (both vend linked
     *  pointers; the v2 escape rule tracks either). */
    std::set<std::string> returnsLinked;
    /** function name -> lock classes it may acquire (AP_ACQUIRES). */
    std::map<std::string, std::set<std::string>> acquires;
    /** lock member/accessor name -> lock class (AP_LOCK_LEVEL). */
    std::map<std::string, std::string> lockNames;
    /** canonical order, outermost first; empty if no directive. */
    std::vector<std::string> lockOrder;
    std::map<std::string, int> lockRank;
    /** function name -> resource class it acquires (AP_ACQUIRES_REF). */
    std::map<std::string, std::string> acquiresRef;
    /** function name -> resource class it releases (AP_RELEASES_REF). */
    std::map<std::string, std::string> releasesRef;
    /** AP_BALANCED functions: every path must net zero refs. */
    std::set<std::string> balanced;
    /** function name -> declared "A->B" edges (AP_TRANSITIONS). */
    std::map<std::string, std::set<std::string>> transitions;
    /** registered machine from the pte-edges directive, in order. */
    std::vector<std::string> pteEdges;
    std::set<std::string> pteEdgeSet;
};

// ---- helpers shared with the whole-program passes ----------------------

/** A [acquire, release) span of a registered lock class, token order. */
struct HeldRegion
{
    std::string lockClass;
    size_t beginTok; ///< token index of the acquire callee
    size_t endTok;   ///< token index of the release, or SIZE_MAX
    int line;
};

/** Is this condition identifier lane-dependent? */
bool laneIsh(const std::string& ident);

/** Find `auto& lk = ... <registered>() ...;` aliases in a body. */
std::map<std::string, std::string>
collectAliases(const FileModel& m, const Func& f, const GlobalModel& g);

/** Pair up acquire/release call sites into held regions. */
std::vector<HeldRegion>
computeHeldRegions(const Func& f, const GlobalModel& g,
                   const std::map<std::string, std::string>& aliases);

/** Is the token inside the region's (begin, end) span? */
bool inRegion(const HeldRegion& r, size_t tok);

/**
 * Walk back from a call's callee token to the start of its receiver
 * chain (`pt.bucketLock(b).acquire` -> index of `pt`).
 */
size_t chainStart(const std::vector<Token>& toks, size_t i);

/** All rule IDs aplint can emit (used to validate waivers). */
const std::set<std::string>& knownRules();

/** Merge annotations and directives from every parsed file. */
GlobalModel buildGlobal(const std::vector<FileModel>& files,
                        std::vector<Finding>& findings);

/** Run every rule on one file against the global registries. */
void runRules(const FileModel& file, const GlobalModel& g,
              std::vector<Finding>& findings);

} // namespace ap::lint

#endif // APLINT_RULES_HH
