#include "report.hh"

#include <array>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/table.hh"

namespace ap::apstat {

namespace {

/** Canonical display order; unknown names sort after these. */
constexpr std::array<std::string_view, 5> kKindOrder{
    "major", "minor", "spec_hit", "spec_fill", "error"};
constexpr std::array<std::string_view, 7> kStageOrder{
    "lookup", "alloc",    "enqueue", "queue_wait",
    "transfer", "fill", "wakeup"};

template <size_t N>
size_t
orderOf(const std::array<std::string_view, N>& order,
        const std::string& name)
{
    for (size_t i = 0; i < N; ++i)
        if (order[i] == name)
            return i;
    return N;
}

/** Sort keys canonically first, unknowns alphabetically after. */
template <size_t N>
std::vector<std::string>
sortedKeys(const std::array<std::string_view, N>& order,
           const std::vector<std::string>& keys)
{
    std::vector<std::string> out = keys;
    std::sort(out.begin(), out.end(),
              [&](const std::string& a, const std::string& b) {
                  size_t ia = orderOf(order, a), ib = orderOf(order, b);
                  return ia != ib ? ia < ib : a < b;
              });
    return out;
}

} // namespace

bool
StageReport::build(const JsonValue& trace, std::string& err)
{
    const JsonValue* events = &trace;
    if (trace.isObject()) {
        events = trace.find("traceEvents");
        if (!events) {
            err = "document has no \"traceEvents\" member";
            return false;
        }
    }
    if (!events->isArray()) {
        err = "trace events are not an array";
        return false;
    }

    // Per-fault accumulation: stage durations keyed by the fault id
    // carried in span args; totals telescope exactly.
    struct FaultAcc
    {
        std::string kind;
        double total = 0;
    };
    std::unordered_map<uint64_t, FaultAcc> perFault;
    std::unordered_map<uint64_t, std::pair<size_t, size_t>> flows;

    for (const JsonValue& e : events->arr) {
        if (!e.isObject())
            continue;
        std::string_view ph = e.stringOr("ph", "");
        if (ph == "s" || ph == "f") {
            uint64_t id =
                static_cast<uint64_t>(e.numberOr("id", 0));
            if (ph == "s") {
                flowStarts++;
                flows[id].first++;
            } else {
                flowEnds++;
                flows[id].second++;
            }
            continue;
        }
        if (ph != "X" || e.stringOr("cat", "") != "faultstage")
            continue;
        std::string_view name = e.stringOr("name", "");
        size_t dot = name.find('.');
        if (dot == std::string_view::npos)
            continue;
        std::string kind(name.substr(0, dot));
        std::string stage(name.substr(dot + 1));
        double dur = e.numberOr("dur", 0);
        stages[kind][stage].record(dur);
        spanCount++;
        const JsonValue* args = e.find("args");
        if (args) {
            uint64_t fid =
                static_cast<uint64_t>(args->numberOr("fault", 0));
            if (fid != 0) {
                FaultAcc& acc = perFault[fid];
                acc.kind = kind;
                acc.total += dur;
            }
        }
    }

    for (const auto& [fid, acc] : perFault)
        totals[acc.kind].record(acc.total);
    for (const auto& [id, counts] : flows)
        if (counts.first != 1 || counts.second != 1)
            flowMismatches++;
    return true;
}

void
StageReport::printTable(std::ostream& os) const
{
    TextTable t;
    t.header({"kind", "stage", "count", "min", "max", "mean", "p50",
              "p95", "p99"});

    std::vector<std::string> kinds;
    for (const auto& [kind, by_stage] : stages)
        kinds.push_back(kind);
    for (const std::string& kind :
         sortedKeys(kKindOrder, kinds)) {
        const auto& by_stage = stages.at(kind);
        std::vector<std::string> names;
        for (const auto& [stage, h] : by_stage)
            names.push_back(stage);
        for (const std::string& stage :
             sortedKeys(kStageOrder, names)) {
            const Histogram& h = by_stage.at(stage);
            t.row({kind, stage, std::to_string(h.count()),
                   TextTable::num(h.min()), TextTable::num(h.max()),
                   TextTable::num(h.mean()),
                   TextTable::num(h.quantileMid(0.50)),
                   TextTable::num(h.quantileMid(0.95)),
                   TextTable::num(h.quantileMid(0.99))});
        }
        auto tot = totals.find(kind);
        if (tot != totals.end()) {
            const Histogram& h = tot->second;
            t.row({kind, "total", std::to_string(h.count()),
                   TextTable::num(h.min()), TextTable::num(h.max()),
                   TextTable::num(h.mean()),
                   TextTable::num(h.quantileMid(0.50)),
                   TextTable::num(h.quantileMid(0.95)),
                   TextTable::num(h.quantileMid(0.99))});
        }
    }
    t.print(os);
}

} // namespace ap::apstat
