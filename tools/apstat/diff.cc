#include "diff.hh"

#include <cmath>

#include "util/table.hh"

namespace ap::apstat {

namespace {

/**
 * Validate the ap-bench-result envelope and return the "metrics"
 * object, or null with @p err set. @p which names the offending file
 * role ("baseline" / "current") in messages.
 */
const JsonValue*
metricsOf(const JsonValue& doc, const char* which, std::string& err)
{
    if (!doc.isObject()) {
        err = std::string(which) + " is not a JSON object";
        return nullptr;
    }
    if (doc.stringOr("schema", "") != "ap-bench-result") {
        err = std::string(which) +
              " is not an ap-bench-result document (schema mismatch)";
        return nullptr;
    }
    if (doc.numberOr("version", 0) != 1) {
        err = std::string(which) + " has unsupported version " +
              std::to_string(doc.numberOr("version", 0));
        return nullptr;
    }
    const JsonValue* m = doc.find("metrics");
    if (!m || !m->isObject()) {
        err = std::string(which) + " has no \"metrics\" object";
        return nullptr;
    }
    return m;
}

/** Deep structural equality (config sections: strings and numbers). */
bool
sameValue(const JsonValue& a, const JsonValue& b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
    case JsonValue::Kind::Null: return true;
    case JsonValue::Kind::Bool: return a.boolean == b.boolean;
    case JsonValue::Kind::Number: return a.number == b.number;
    case JsonValue::Kind::String: return a.str == b.str;
    case JsonValue::Kind::Array:
        if (a.arr.size() != b.arr.size())
            return false;
        for (size_t i = 0; i < a.arr.size(); ++i)
            if (!sameValue(a.arr[i], b.arr[i]))
                return false;
        return true;
    case JsonValue::Kind::Object:
        if (a.obj.size() != b.obj.size())
            return false;
        for (size_t i = 0; i < a.obj.size(); ++i)
            if (a.obj[i].first != b.obj[i].first ||
                !sameValue(a.obj[i].second, b.obj[i].second))
                return false;
        return true;
    }
    return false;
}

const char*
statusName(MetricDiff::Status s)
{
    switch (s) {
    case MetricDiff::Status::Ok: return "ok";
    case MetricDiff::Status::Improved: return "improved";
    case MetricDiff::Status::Regressed: return "REGRESSED";
    case MetricDiff::Status::Missing: return "MISSING";
    case MetricDiff::Status::Added: return "added";
    }
    return "?";
}

/** Band check for one metric that exists on both sides. */
MetricDiff::Status
judge(const MetricDiff& m)
{
    if (m.better == "exact")
        return m.cur == m.base ? MetricDiff::Status::Ok
                               : MetricDiff::Status::Regressed;
    // Band on |base| so a (rare) negative baseline still gets a band
    // around itself rather than an inverted one.
    double hi = m.base + m.tol * std::fabs(m.base);
    double lo = m.base - m.tol * std::fabs(m.base);
    if (m.better == "lower") {
        if (m.cur > hi)
            return MetricDiff::Status::Regressed;
        return m.cur < lo ? MetricDiff::Status::Improved
                          : MetricDiff::Status::Ok;
    }
    // "higher"; an unknown direction string is judged as higher so a
    // typo in a baseline still produces band checks, not a free pass.
    if (m.cur < lo)
        return MetricDiff::Status::Regressed;
    return m.cur > hi ? MetricDiff::Status::Improved
                      : MetricDiff::Status::Ok;
}

} // namespace

bool
DiffReport::build(const JsonValue& base, const JsonValue& cur,
                  std::string& err, double tol_scale)
{
    const JsonValue* bm = metricsOf(base, "baseline", err);
    if (!bm)
        return false;
    const JsonValue* cm = metricsOf(cur, "current", err);
    if (!cm)
        return false;

    std::string bb(base.stringOr("bench", ""));
    std::string cb(cur.stringOr("bench", ""));
    if (bb.empty() || bb != cb) {
        err = "bench name mismatch: baseline \"" + bb +
              "\" vs current \"" + cb + "\"";
        return false;
    }
    bench = bb;

    const JsonValue* bcfg = base.find("config");
    const JsonValue* ccfg = cur.find("config");
    if ((bcfg == nullptr) != (ccfg == nullptr) ||
        (bcfg && !sameValue(*bcfg, *ccfg))) {
        err = "config sections differ — the runs are not comparable "
              "(rerun the bench with the baseline's configuration, or "
              "rebaseline)";
        return false;
    }

    rows.clear();
    regressions = 0;

    // Baseline order first (BenchResult sorts its metric map, so this
    // is deterministic), then current-only additions.
    for (const auto& [name, bv] : bm->obj) {
        MetricDiff m;
        m.name = name;
        m.better = bv.stringOr("better", "higher");
        m.tol = bv.numberOr("tol", 0) * tol_scale;
        m.base = bv.numberOr("value", 0);
        const JsonValue* cv = cm->find(name);
        if (!cv) {
            m.status = MetricDiff::Status::Missing;
            m.cur = std::nan("");
        } else {
            m.cur = cv->numberOr("value", 0);
            m.status = judge(m);
        }
        if (m.status == MetricDiff::Status::Regressed ||
            m.status == MetricDiff::Status::Missing)
            regressions++;
        rows.push_back(std::move(m));
    }
    for (const auto& [name, cv] : cm->obj) {
        if (bm->find(name))
            continue;
        MetricDiff m;
        m.name = name;
        m.better = cv.stringOr("better", "higher");
        m.tol = cv.numberOr("tol", 0) * tol_scale;
        m.base = std::nan("");
        m.cur = cv.numberOr("value", 0);
        m.status = MetricDiff::Status::Added;
        rows.push_back(std::move(m));
    }
    return true;
}

void
DiffReport::printTable(std::ostream& os) const
{
    TextTable t;
    t.header({"metric", "better", "baseline", "current", "delta%",
              "tol%", "status"});
    for (const MetricDiff& m : rows) {
        std::string delta = "n/a";
        if (!std::isnan(m.base) && !std::isnan(m.cur) && m.base != 0)
            delta =
                TextTable::num((m.cur - m.base) / m.base * 100.0, 2);
        t.row({m.name, m.better,
               std::isnan(m.base) ? "-" : TextTable::num(m.base),
               std::isnan(m.cur) ? "-" : TextTable::num(m.cur), delta,
               TextTable::num(m.tol * 100.0, 1),
               statusName(m.status)});
    }
    t.print(os);
    os << "bench \"" << bench << "\": " << rows.size() << " metrics, "
       << regressions << " regression"
       << (regressions == 1 ? "" : "s") << "\n";
}

} // namespace ap::apstat
