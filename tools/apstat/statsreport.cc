#include "statsreport.hh"

#include <algorithm>
#include <array>
#include <string_view>
#include <vector>

#include "util/table.hh"

namespace ap::apstat {

namespace {

/** Eviction-reason display order; mirrors the simulator enums. */
constexpr std::array<std::string_view, 4> kTlbReasons{
    "conflict", "invalidation", "shootdown", "teardown"};
constexpr std::array<std::string_view, 7> kPcReasons{
    "clock_sweep",      "reserve_refill", "bucket_overflow",
    "poisoned_reclaim", "spec_victim",    "cross_tenant",
    "teardown"};

bool
startsWith(const std::string& s, std::string_view prefix)
{
    return s.rfind(prefix, 0) == 0;
}

double
lookupOr(const std::map<std::string, double>& m, const std::string& key)
{
    auto it = m.find(key);
    return it == m.end() ? 0.0 : it->second;
}

/** Append one histogram-summary row (count..p99) labeled @p label. */
void
summaryRow(TextTable& t, const std::string& label,
           const StatsReport::HistSummary& h)
{
    t.row({label, TextTable::num(h.count, 0), TextTable::num(h.min),
           TextTable::num(h.max), TextTable::num(h.mean),
           TextTable::num(h.p50), TextTable::num(h.p95),
           TextTable::num(h.p99)});
}

/** Shared dead-entry table: per-reason evicted/DoA/DoA% plus total. */
template <size_t N>
void
deadEntryTable(std::ostream& os, const StatsReport& r,
               const std::array<std::string_view, N>& reasons,
               std::string_view evictPrefix, std::string_view doaPrefix)
{
    TextTable t;
    t.header({"reason", "evicted", "doa", "doa%"});
    double evict_total = 0;
    double doa_total = 0;
    for (std::string_view reason : reasons) {
        double ev = lookupOr(r.counters,
                             std::string(evictPrefix) + std::string(reason));
        double doa = lookupOr(r.counters,
                              std::string(doaPrefix) + std::string(reason));
        evict_total += ev;
        doa_total += doa;
        if (ev == 0 && doa == 0)
            continue;
        t.row({std::string(reason), TextTable::num(ev, 0),
               TextTable::num(doa, 0),
               ev > 0 ? TextTable::pct(doa / ev) : "-"});
    }
    t.row({"total", TextTable::num(evict_total, 0),
           TextTable::num(doa_total, 0),
           evict_total > 0 ? TextTable::pct(doa_total / evict_total)
                           : "-"});
    t.print(os);
}

} // namespace

bool
StatsReport::build(const JsonValue& doc, std::string& err)
{
    if (!doc.isObject()) {
        err = "stats document is not an object";
        return false;
    }
    const JsonValue* cs = doc.find("counters");
    const JsonValue* ss = doc.find("scalars");
    const JsonValue* hs = doc.find("histograms");
    if (!cs || !ss || !hs || !cs->isObject() || !ss->isObject() ||
        !hs->isObject()) {
        err = "not a stats dump (need \"counters\", \"scalars\", and "
              "\"histograms\" objects)";
        return false;
    }
    for (const auto& [name, v] : cs->obj)
        if (v.isNumber())
            counters[name] = v.number;
    for (const auto& [name, v] : ss->obj)
        if (v.isNumber())
            scalars[name] = v.number;
    for (const auto& [name, v] : hs->obj) {
        if (!v.isObject())
            continue;
        HistSummary h;
        h.count = v.numberOr("count", 0);
        h.min = v.numberOr("min", 0);
        h.max = v.numberOr("max", 0);
        h.mean = v.numberOr("mean", 0);
        h.p50 = v.numberOr("p50", 0);
        h.p95 = v.numberOr("p95", 0);
        h.p99 = v.numberOr("p99", 0);
        hists[name] = h;
    }
    return true;
}

bool
StatsReport::hasTlb() const
{
    for (const auto& [name, v] : counters) {
        (void)v;
        if (startsWith(name, "tlb."))
            return true;
    }
    return hists.count("tlb.entry_lifetime") ||
           hists.count("tlb.reuse_distance");
}

bool
StatsReport::hasPageCache() const
{
    for (const auto& [name, v] : counters) {
        (void)v;
        if (startsWith(name, "pagecache.evict.") ||
            startsWith(name, "pagecache.doa.") ||
            startsWith(name, "pagecache.life."))
            return true;
    }
    return hists.count("pagecache.life.lifetime") != 0;
}

bool
StatsReport::hasContig() const
{
    if (hists.count("contig.runs"))
        return true;
    for (const auto& [name, v] : scalars) {
        (void)v;
        if (startsWith(name, "contig."))
            return true;
    }
    return false;
}

bool
StatsReport::hasTenants() const
{
    for (const auto& [name, v] : counters) {
        (void)v;
        if (startsWith(name, "tenant.t"))
            return true;
    }
    return false;
}

void
StatsReport::printTlbTable(std::ostream& os) const
{
    os << "TLB dead-entry breakdown (entries evicted with zero hits):\n";
    deadEntryTable(os, *this, kTlbReasons, "tlb.evict.", "tlb.doa.");
    TextTable t;
    t.header({"distribution", "count", "min", "max", "mean", "p50",
              "p95", "p99"});
    bool any = false;
    for (const char* hname : {"tlb.entry_lifetime", "tlb.reuse_distance"}) {
        auto it = hists.find(hname);
        if (it == hists.end())
            continue;
        summaryRow(t, hname, it->second);
        any = true;
    }
    if (any) {
        os << "TLB entry lifetime / reuse distance (cycles):\n";
        t.print(os);
    }
}

void
StatsReport::printPageCacheTable(std::ostream& os) const
{
    os << "Page-cache frame-lifetime breakdown (frames evicted with "
          "zero demand hits):\n";
    deadEntryTable(os, *this, kPcReasons, "pagecache.evict.",
                   "pagecache.doa.");
    TextTable t;
    t.header({"distribution", "count", "min", "max", "mean", "p50",
              "p95", "p99"});
    bool any = false;
    for (const char* hname :
         {"pagecache.life.lifetime", "pagecache.life.fill_to_first_hit",
          "pagecache.life.demand_hits"}) {
        auto it = hists.find(hname);
        if (it == hists.end())
            continue;
        summaryRow(t, hname, it->second);
        any = true;
    }
    if (any) {
        os << "Frame lifetime (cycles) and demand hits per residency:\n";
        t.print(os);
    }
}

void
StatsReport::printContigTable(std::ostream& os) const
{
    os << "Resident contiguity (pages: "
       << TextTable::num(lookupOr(scalars, "contig.resident_pages"), 0)
       << ", runs: "
       << TextTable::num(lookupOr(scalars, "contig.resident_runs"), 0)
       << ", longest now: "
       << TextTable::num(lookupOr(scalars, "contig.max_resident_run"), 0)
       << ", longest ever: "
       << TextTable::num(lookupOr(scalars, "contig.max_run"), 0) << ")\n";
    TextTable t;
    t.header({"file", "runs", "min", "max", "mean", "p50", "p95",
              "p99"});
    bool any = false;
    for (const auto& [name, h] : hists) {
        if (!startsWith(name, "contig.") ||
            name.size() < sizeof("contig.runs") - 1 ||
            name.compare(name.size() - 5, 5, ".runs") != 0)
            continue;
        // Label "contig.<group>.runs" rows by their group; the
        // aggregate "contig.runs" histogram prints as "all".
        std::string label = "all";
        if (name != "contig.runs")
            label = name.substr(sizeof("contig.") - 1,
                                name.size() - (sizeof("contig.") - 1) - 5);
        summaryRow(t, label, h);
        any = true;
    }
    if (any)
        t.print(os);
}

void
StatsReport::printTenantTable(std::ostream& os) const
{
    // Collect tenant ids from "tenant.t<id>." counter names.
    std::vector<std::string> ids;
    for (const auto& [name, v] : counters) {
        (void)v;
        if (!startsWith(name, "tenant.t"))
            continue;
        size_t dot = name.find('.', sizeof("tenant.t") - 1);
        if (dot == std::string::npos)
            continue;
        std::string id = name.substr(sizeof("tenant.t") - 1,
                                     dot - sizeof("tenant.t") + 1);
        if (id.empty() ||
            id.find_first_not_of("0123456789") != std::string::npos)
            continue;
        if (std::find(ids.begin(), ids.end(), id) == ids.end())
            ids.push_back(id);
    }
    if (ids.empty())
        return;
    std::sort(ids.begin(), ids.end(), [](const std::string& a,
                                         const std::string& b) {
        return a.size() != b.size() ? a.size() < b.size() : a < b;
    });
    os << "Per-tenant faults:\n";
    TextTable t;
    t.header({"tenant", "minor", "major", "faults", "lat_mean",
              "lat_p50", "lat_p95"});
    for (const std::string& id : ids) {
        std::string pfx = "tenant.t" + id + ".";
        double minor = lookupOr(counters, pfx + "minor_faults");
        double major = lookupOr(counters, pfx + "major_faults");
        auto h = hists.find(pfx + "fault_cycles");
        bool have_h = h != hists.end();
        t.row({"t" + id, TextTable::num(minor, 0),
               TextTable::num(major, 0),
               TextTable::num(have_h ? h->second.count : minor + major, 0),
               have_h ? TextTable::num(h->second.mean) : "-",
               have_h ? TextTable::num(h->second.p50) : "-",
               have_h ? TextTable::num(h->second.p95) : "-"});
    }
    t.print(os);
}

void
StatsReport::print(std::ostream& os) const
{
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << "\n";
        first = false;
    };
    if (hasTlb()) {
        sep();
        printTlbTable(os);
    }
    if (hasPageCache()) {
        sep();
        printPageCacheTable(os);
    }
    if (hasContig()) {
        sep();
        printContigTable(os);
    }
    if (hasTenants()) {
        sep();
        printTenantTable(os);
    }
    if (first)
        os << "no translation telemetry in stats dump\n";
}

} // namespace ap::apstat
