#include "json_reader.hh"

#include <cctype>
#include <cstdlib>

namespace ap::apstat {

const JsonValue*
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto& [k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue* v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

std::string_view
JsonValue::stringOr(std::string_view key, std::string_view fallback) const
{
    const JsonValue* v = find(key);
    return v && v->isString() ? std::string_view(v->str) : fallback;
}

namespace {

/** One parse in flight: cursor over the input plus the error slot. */
class Parser
{
  public:
    Parser(std::string_view text, std::string& err)
        : text_(text), err_(err)
    {
    }

    bool
    parseDocument(JsonValue& out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after document");
        return true;
    }

  private:
    bool
    fail(const std::string& what)
    {
        err_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    /** Append code point @p cp to @p s as UTF-8. */
    static void
    appendUtf8(std::string& s, uint32_t cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseHex4(uint32_t& out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string& out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        pos_++;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  uint32_t cp;
                  if (!parseHex4(cp))
                      return false;
                  // Surrogate pair: a high surrogate must be followed
                  // by \uDC00..\uDFFF forming one supplementary char.
                  if (cp >= 0xD800 && cp <= 0xDBFF &&
                      text_.substr(pos_, 2) == "\\u") {
                      pos_ += 2;
                      uint32_t lo;
                      if (!parseHex4(lo))
                          return false;
                      if (lo < 0xDC00 || lo > 0xDFFF)
                          return fail("bad low surrogate");
                      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default: return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue& out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            pos_++;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            pos_++;
        std::string tok(text_.substr(start, pos_ - start));
        char* end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0') {
            pos_ = start;
            return fail("bad number");
        }
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    bool
    parseValue(JsonValue& out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case 'n':
              out.kind = JsonValue::Kind::Null;
              return literal("null");
          case 't':
              out.kind = JsonValue::Kind::Bool;
              out.boolean = true;
              return literal("true");
          case 'f':
              out.kind = JsonValue::Kind::Bool;
              out.boolean = false;
              return literal("false");
          case '"':
              out.kind = JsonValue::Kind::String;
              return parseString(out.str);
          case '[': {
              pos_++;
              out.kind = JsonValue::Kind::Array;
              skipWs();
              if (pos_ < text_.size() && text_[pos_] == ']') {
                  pos_++;
                  return true;
              }
              for (;;) {
                  out.arr.emplace_back();
                  if (!parseValue(out.arr.back()))
                      return false;
                  skipWs();
                  if (pos_ >= text_.size())
                      return fail("unterminated array");
                  if (text_[pos_] == ',') {
                      pos_++;
                      continue;
                  }
                  if (text_[pos_] == ']') {
                      pos_++;
                      return true;
                  }
                  return fail("expected ',' or ']'");
              }
          }
          case '{': {
              pos_++;
              out.kind = JsonValue::Kind::Object;
              skipWs();
              if (pos_ < text_.size() && text_[pos_] == '}') {
                  pos_++;
                  return true;
              }
              for (;;) {
                  skipWs();
                  std::string key;
                  if (!parseString(key))
                      return false;
                  skipWs();
                  if (pos_ >= text_.size() || text_[pos_] != ':')
                      return fail("expected ':'");
                  pos_++;
                  out.obj.emplace_back(std::move(key), JsonValue{});
                  if (!parseValue(out.obj.back().second))
                      return false;
                  skipWs();
                  if (pos_ >= text_.size())
                      return fail("unterminated object");
                  if (text_[pos_] == ',') {
                      pos_++;
                      continue;
                  }
                  if (text_[pos_] == '}') {
                      pos_++;
                      return true;
                  }
                  return fail("expected ',' or '}'");
              }
          }
          default:
              return parseNumber(out);
        }
    }

    std::string_view text_;
    std::string& err_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue& out, std::string& err)
{
    out = JsonValue{};
    return Parser(text, err).parseDocument(out);
}

} // namespace ap::apstat
