/**
 * @file
 * A minimal recursive-descent JSON parser for apstat (docs/
 * OBSERVABILITY.md). Parses the Chrome trace files the simulator's
 * Tracer writes — full RFC 8259 value grammar, no streaming, no
 * extensions. Kept dependency-free so the tools tree builds with
 * nothing but the standard library.
 */

#ifndef AP_TOOLS_APSTAT_JSON_READER_HH
#define AP_TOOLS_APSTAT_JSON_READER_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ap::apstat {

/** A parsed JSON value (tagged union, deep copies). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> arr;
    /** Members in document order (duplicate keys are kept as-is). */
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** First member named @p key, or null if absent / not an object. */
    const JsonValue* find(std::string_view key) const;

    /** Member @p key as a number, or @p fallback. */
    double numberOr(std::string_view key, double fallback) const;

    /** Member @p key as a string, or @p fallback. */
    std::string_view stringOr(std::string_view key,
                              std::string_view fallback) const;
};

/**
 * Parse @p text as one JSON document.
 * @return true on success; on failure @p err describes the first
 *         problem with a byte offset and @p out is unspecified.
 */
bool parseJson(std::string_view text, JsonValue& out, std::string& err);

} // namespace ap::apstat

#endif // AP_TOOLS_APSTAT_JSON_READER_HH
