/**
 * @file
 * apstat's perf-diff core: compare two "ap-bench-result" documents
 * (the `--json` output of the bench binaries, committed as BENCH_*.json
 * baselines) metric by metric, with direction-aware tolerance bands.
 *
 * Each metric carries its own contract in the baseline document:
 *   better=lower   regression when cur > base * (1 + tol)
 *   better=higher  regression when cur < base * (1 - tol)
 *   better=exact   regression on any change (determinism counters)
 * A metric present in the baseline but missing from the current run is
 * a regression (a bench silently dropping a scenario must not pass);
 * a metric only the current run has is reported but never fails — new
 * scenarios land before their baseline does.
 *
 * Used by `apstat diff <baseline.json> <current.json>` and by
 * scripts/perf_diff, which gates CI on the committed baselines.
 */

#ifndef AP_TOOLS_APSTAT_DIFF_HH
#define AP_TOOLS_APSTAT_DIFF_HH

#include <ostream>
#include <string>
#include <vector>

#include "json_reader.hh"

namespace ap::apstat {

/** One metric's comparison outcome. */
struct MetricDiff
{
    enum class Status {
        Ok,        ///< inside the tolerance band
        Improved,  ///< outside the band in the good direction
        Regressed, ///< outside the band in the bad direction
        Missing,   ///< in baseline, absent from current (counts as
                   ///< a regression)
        Added,     ///< in current only (informational)
    };

    std::string name;
    std::string better; ///< "lower" | "higher" | "exact"
    double tol = 0;     ///< effective tolerance (baseline tol * scale)
    double base = 0;
    double cur = 0;
    Status status = Status::Ok;
};

/** Comparison of two ap-bench-result documents. */
struct DiffReport
{
    std::string bench;
    std::vector<MetricDiff> rows;
    size_t regressions = 0;

    /**
     * Compare @p base against @p cur. Both must be ap-bench-result
     * version-1 documents for the same bench with identical "config"
     * sections — comparing runs of different shapes is meaningless,
     * so a mismatch fails the build rather than producing a table.
     * @p tol_scale widens (or tightens) every lower/higher band;
     * exact metrics are never scaled.
     * @return false with @p err set when the documents are not
     *         comparable.
     */
    bool build(const JsonValue& base, const JsonValue& cur,
               std::string& err, double tol_scale = 1.0);

    /** Render the per-metric table plus a one-line verdict. */
    void printTable(std::ostream& os) const;
};

} // namespace ap::apstat

#endif // AP_TOOLS_APSTAT_DIFF_HH
