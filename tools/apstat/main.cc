/**
 * @file
 * apstat: offline analysis of the simulator's performance artifacts
 * (docs/OBSERVABILITY.md).
 *
 * Trace mode — `apstat <trace.json>` ("-" reads stdin): reads a
 * Chrome trace written by the simulator's Tracer and prints the
 * per-stage fault latency table. Counts, min/max, and mean match
 * StatGroup::dumpJson(); the p50/p95/p99 columns use the geometric-
 * midpoint rounding contract (Histogram::quantileMid — see
 * report.hh), bounding the error from log2 bucketing by sqrt(2).
 *
 * Diff mode — `apstat diff <baseline.json> <current.json>
 * [--tol-scale X]`: compares two ap-bench-result documents (the
 * `--json` output of the bench binaries) with per-metric
 * direction-aware tolerance bands; scripts/perf_diff gates CI on the
 * committed BENCH_*.json baselines through this mode.
 *
 * Stats mode — `apstat stats <stats.json>` ("-" reads stdin): reads a
 * StatGroup::dumpJson() document and rebuilds the translation-
 * telemetry tables — TLB dead-entry breakdown, page-cache frame
 * lifetimes, resident-contiguity runs, per-tenant faults (see
 * statsreport.hh).
 *
 * Exit status: 0 on success, 1 on usage/IO errors, 2 on malformed or
 * non-comparable input, 3 when a trace's flow events are inconsistent
 * (a fault chain with no matching start/end — truncated trace),
 * 4 when diff mode finds at least one regression.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "diff.hh"
#include "report.hh"
#include "statsreport.hh"

namespace {

bool
readAll(const char* path, std::string& out)
{
    if (std::string_view(path) == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        out = ss.str();
        return true;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Read + parse one JSON file, with apstat's usual exit codes. */
int
load(const char* path, ap::apstat::JsonValue& doc)
{
    std::string text;
    if (!readAll(path, text)) {
        std::cerr << "apstat: cannot read " << path << "\n";
        return 1;
    }
    std::string err;
    if (!ap::apstat::parseJson(text, doc, err)) {
        std::cerr << "apstat: " << path << ": " << err << "\n";
        return 2;
    }
    return 0;
}

int
usage()
{
    std::cerr
        << "usage: apstat <trace.json>  (\"-\" for stdin)\n"
           "       apstat diff <baseline.json> <current.json>"
           " [--tol-scale X]\n"
           "       apstat stats <stats.json>\n";
    return 1;
}

int
runDiff(int argc, char** argv)
{
    double tol_scale = 1.0;
    const char* paths[2] = {nullptr, nullptr};
    int npaths = 0;
    for (int i = 2; i < argc; ++i) {
        std::string_view a = argv[i];
        if (a == "--tol-scale" && i + 1 < argc) {
            char* end = nullptr;
            tol_scale = std::strtod(argv[++i], &end);
            if (!end || *end != '\0' || tol_scale <= 0) {
                std::cerr << "apstat: bad --tol-scale value\n";
                return 1;
            }
        } else if (npaths < 2 && !a.empty() && a[0] != '-') {
            paths[npaths++] = argv[i];
        } else {
            return usage();
        }
    }
    if (npaths != 2)
        return usage();

    ap::apstat::JsonValue base, cur;
    if (int rc = load(paths[0], base))
        return rc;
    if (int rc = load(paths[1], cur))
        return rc;

    ap::apstat::DiffReport d;
    std::string err;
    if (!d.build(base, cur, err, tol_scale)) {
        std::cerr << "apstat: " << err << "\n";
        return 2;
    }
    d.printTable(std::cout);
    return d.regressions != 0 ? 4 : 0;
}

int
runStats(const char* path)
{
    ap::apstat::JsonValue doc;
    if (int rc = load(path, doc))
        return rc;
    ap::apstat::StatsReport report;
    std::string err;
    if (!report.build(doc, err)) {
        std::cerr << "apstat: " << path << ": " << err << "\n";
        return 2;
    }
    report.print(std::cout);
    return 0;
}

int
runTrace(const char* path)
{
    ap::apstat::JsonValue doc;
    if (int rc = load(path, doc))
        return rc;
    ap::apstat::StageReport report;
    std::string err;
    if (!report.build(doc, err)) {
        std::cerr << "apstat: " << path << ": " << err << "\n";
        return 2;
    }

    double dropped = doc.numberOr("droppedEvents", 0);
    if (dropped > 0)
        std::cerr << "apstat: warning: trace truncated — "
                  << static_cast<uint64_t>(dropped)
                  << " events dropped at the event cap; tables below "
                     "undercount\n";

    if (report.spanCount == 0)
        std::cout << "no faultstage spans in trace (run with tracing "
                     "enabled)\n";
    else
        report.printTable(std::cout);
    std::cout << report.flowStarts << " fault flows ("
              << report.flowMismatches << " mismatched)\n";
    if (report.flowMismatches != 0) {
        std::cerr << "apstat: " << report.flowMismatches
                  << " fault chains lack a matching start/end — "
                     "truncated trace?\n";
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc >= 2 && std::string_view(argv[1]) == "diff")
        return runDiff(argc, argv);
    if (argc == 3 && std::string_view(argv[1]) == "stats")
        return runStats(argv[2]);
    if (argc != 2 || std::string_view(argv[1]) == "--help")
        return usage();
    return runTrace(argv[1]);
}
