/**
 * @file
 * apstat: offline fault-path latency analysis (docs/OBSERVABILITY.md).
 * Reads a Chrome trace JSON written by the simulator's Tracer and
 * prints the per-stage latency percentile table — the same numbers
 * StatGroup::dumpJson() reports in-process, recovered from the trace
 * alone, so a saved trace is a self-contained performance artifact.
 *
 * Usage: apstat <trace.json>   ("-" reads stdin)
 *
 * Exit status: 0 on success, 1 on usage/IO errors, 2 on malformed
 * JSON, 3 when the trace's flow events are inconsistent (a fault
 * chain with no matching start/end — indicates a truncated trace).
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "report.hh"

namespace {

bool
readAll(const char* path, std::string& out)
{
    if (std::string_view(path) == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        out = ss.str();
        return true;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2 || std::string_view(argv[1]) == "--help") {
        std::cerr << "usage: apstat <trace.json>  (\"-\" for stdin)\n";
        return 1;
    }
    std::string text;
    if (!readAll(argv[1], text)) {
        std::cerr << "apstat: cannot read " << argv[1] << "\n";
        return 1;
    }

    ap::apstat::JsonValue doc;
    std::string err;
    if (!ap::apstat::parseJson(text, doc, err)) {
        std::cerr << "apstat: " << argv[1] << ": " << err << "\n";
        return 2;
    }
    ap::apstat::StageReport report;
    if (!report.build(doc, err)) {
        std::cerr << "apstat: " << argv[1] << ": " << err << "\n";
        return 2;
    }

    if (report.spanCount == 0)
        std::cout << "no faultstage spans in trace (run with tracing "
                     "enabled)\n";
    else
        report.printTable(std::cout);
    std::cout << report.flowStarts << " fault flows ("
              << report.flowMismatches << " mismatched)\n";
    if (report.flowMismatches != 0) {
        std::cerr << "apstat: " << report.flowMismatches
                  << " fault chains lack a matching start/end — "
                     "truncated trace?\n";
        return 3;
    }
    return 0;
}
