/**
 * @file
 * apstat's analysis core: turn a parsed Chrome trace (as written by
 * ap::sim::Tracer, with FaultPath's "faultstage" spans and per-fault
 * flow events) back into the per-stage latency distributions the
 * simulator recorded — same ap::Histogram type, so counts, min/max,
 * and mean match StatGroup::dumpJson() exactly.
 *
 * Percentile rounding contract: a log2 bucket only certifies that its
 * samples lie in [2^i, 2^(i+1)), so reconstructed percentiles are
 * estimates. The table reports the *geometric midpoint* of the hit
 * bucket (Histogram::quantileMid), which bounds the multiplicative
 * error by sqrt(2) in both directions; the previous linear
 * interpolation degraded to the bucket's upper bound and could
 * overstate p50/p95/p99 by up to 2x. dumpJson's in-process p50/p95/
 * p99 use Histogram::quantile (linear), so the two outputs agree on
 * the bucket but may differ inside it — golden files must name which
 * contract they were computed under.
 */

#ifndef AP_TOOLS_APSTAT_REPORT_HH
#define AP_TOOLS_APSTAT_REPORT_HH

#include <map>
#include <ostream>
#include <string>

#include "json_reader.hh"
#include "util/histogram.hh"

namespace ap::apstat {

/** Per-stage and per-fault distributions recovered from one trace. */
struct StageReport
{
    /** stage distributions keyed (fault kind, stage name). */
    std::map<std::string, std::map<std::string, Histogram>> stages;

    /** End-to-end per-fault totals keyed by fault kind (sum of the
     * fault's stage durations — exact, the stages telescope). */
    std::map<std::string, Histogram> totals;

    /** "faultstage" spans consumed. */
    size_t spanCount = 0;

    /** Flow-event bookkeeping ('s' / 'f' phases, matched by id). */
    size_t flowStarts = 0;
    size_t flowEnds = 0;
    /** Flow ids whose start/end events do not pair up one-to-one. */
    size_t flowMismatches = 0;

    /**
     * Scan @p trace (the whole document: object with "traceEvents",
     * or a bare event array) and populate the report.
     * @return false with @p err set when the document has no usable
     *         trace-event array.
     */
    bool build(const JsonValue& trace, std::string& err);

    /** Render the per-kind stage table (docs/OBSERVABILITY.md). */
    void printTable(std::ostream& os) const;
};

} // namespace ap::apstat

#endif // AP_TOOLS_APSTAT_REPORT_HH
