/**
 * @file
 * apstat's stats mode: rebuild the translation-telemetry tables from a
 * StatGroup::dumpJson() document — the TLB dead-entry breakdown (which
 * eviction reasons retire entries that never saw a hit), the
 * page-cache frame-lifetime breakdown, the resident-contiguity runs
 * (per file), and the per-tenant fault tables.
 *
 * The input carries histogram *summaries* (count/min/max/mean/p50/p95/
 * p99 as computed in-process by Histogram::quantile), not buckets, so
 * the tables print those values verbatim — unlike trace mode there is
 * no reconstruction step and no quantileMid rounding contract.
 */

#ifndef AP_TOOLS_APSTAT_STATSREPORT_HH
#define AP_TOOLS_APSTAT_STATSREPORT_HH

#include <map>
#include <ostream>
#include <string>

#include "json_reader.hh"

namespace ap::apstat {

/** Translation-telemetry tables recovered from one stats JSON. */
struct StatsReport
{
    /** Histogram summary as exported by StatGroup::dumpJson(). */
    struct HistSummary
    {
        double count = 0;
        double min = 0;
        double max = 0;
        double mean = 0;
        double p50 = 0;
        double p95 = 0;
        double p99 = 0;
    };

    std::map<std::string, double> counters;
    std::map<std::string, double> scalars;
    std::map<std::string, HistSummary> hists;

    /**
     * Parse @p doc (a StatGroup::dumpJson object with "counters",
     * "scalars", and "histograms" members).
     * @return false with @p err set when the document is not a stats
     *         dump.
     */
    bool build(const JsonValue& doc, std::string& err);

    /** True when any tlb.* telemetry is present. */
    bool hasTlb() const;

    /** True when any pagecache.* lifetime telemetry is present. */
    bool hasPageCache() const;

    /** True when any contig.* snapshot is present. */
    bool hasContig() const;

    /** True when any tenant.t<id>.* stats are present. */
    bool hasTenants() const;

    /** TLB dead-entry table: per-reason evictions, DoA count/rate,
     * then the entry-lifetime and reuse-distance distributions. */
    void printTlbTable(std::ostream& os) const;

    /** Page-cache frame-lifetime table: per-reason evictions and DoA,
     * then lifetime / fill-to-first-hit / demand-hit distributions. */
    void printPageCacheTable(std::ostream& os) const;

    /** Contiguity table: per-file resident run-length distributions
     * plus the residency scalars. */
    void printContigTable(std::ostream& os) const;

    /** Per-tenant fault table: fault counts and latency summaries. */
    void printTenantTable(std::ostream& os) const;

    /** Print every section that has data (section order fixed). */
    void print(std::ostream& os) const;
};

} // namespace ap::apstat

#endif // AP_TOOLS_APSTAT_STATSREPORT_HH
